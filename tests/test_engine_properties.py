"""Property-based tests for the streaming engine.

The load-bearing guarantee: after ingesting *any* random stream of edge
batches, an exact-mode ``query(k, b)`` equals a from-scratch
:class:`GreedyAnchoredKCore` solve on the graph obtained by materialising the
same stream directly — i.e. ingest coalescing, incremental maintenance,
version bookkeeping and cache promotion never change an answer.  Warm-mode
answers are additionally checked for internal consistency (they are the
IncAVT heuristic, so equality with Greedy is not required).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.anchored.followers import compute_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.cores.decomposition import core_numbers
from repro.engine import StreamingAVTEngine
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

MAX_VERTICES = 12

SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def stream_scenarios(draw):
    """A base graph, a batched operation stream, and query parameters."""
    num_vertices = draw(st.integers(min_value=3, max_value=MAX_VERTICES))
    vertices = list(range(num_vertices))
    possible_edges = [(u, v) for u in vertices for v in vertices if u < v]
    base_edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=2 * num_vertices, unique=True)
    )
    num_batches = draw(st.integers(min_value=1, max_value=4))
    batches = []
    for _ in range(num_batches):
        ops = draw(
            st.lists(
                st.tuples(st.booleans(), st.sampled_from(possible_edges)),
                min_size=1,
                max_size=8,
            )
        )
        batches.append(ops)
    k = draw(st.integers(min_value=1, max_value=4))
    budget = draw(st.integers(min_value=0, max_value=3))
    return Graph(edges=base_edges, vertices=vertices), batches, k, budget


def _replay(engine: StreamingAVTEngine, shadow: Graph, ops) -> None:
    """Feed one batch into the engine while mirroring it on a shadow graph."""
    for is_insert, (u, v) in ops:
        if is_insert:
            engine.ingest_insert(u, v)
            shadow.add_edge(u, v)
        else:
            engine.ingest_remove(u, v)
            if shadow.has_edge(u, v):
                shadow.remove_edge(u, v)


@SETTINGS
@given(stream_scenarios())
def test_exact_query_matches_scratch_greedy_after_stream(scenario):
    base, batches, k, budget = scenario
    engine = StreamingAVTEngine(base, warm_queries=False)
    shadow = base.copy()
    for ops in batches:
        _replay(engine, shadow, ops)
        result = engine.query(k, budget)
        scratch = GreedyAnchoredKCore(shadow, k, budget).select()
        assert engine.graph == shadow
        assert result.anchors == scratch.anchors
        assert result.followers == scratch.followers
        assert result.anchored_core_size == scratch.anchored_core_size
    # the maintained core index never drifted from the truth
    assert engine.core_numbers() == core_numbers(shadow)


@SETTINGS
@given(stream_scenarios())
def test_cache_hit_replays_identical_answer(scenario):
    base, batches, k, budget = scenario
    engine = StreamingAVTEngine(base, warm_queries=False)
    for ops in batches:
        _replay(engine, base.copy(), ops)
        first = engine.query(k, budget)
        invocations = engine.stats.solver_invocations
        second = engine.query(k, budget)
        assert second is first
        assert engine.stats.solver_invocations == invocations


@SETTINGS
@given(stream_scenarios())
def test_warm_answers_are_internally_consistent(scenario):
    base, batches, k, budget = scenario
    engine = StreamingAVTEngine(base, warm_queries=True)
    shadow = base.copy()
    for ops in batches:
        _replay(engine, shadow, ops)
        result = engine.query(k, budget)
        assert len(result.anchors) <= budget
        assert len(set(result.anchors)) == len(result.anchors)
        assert set(result.followers) == compute_followers(shadow, k, result.anchors)


@SETTINGS
@given(stream_scenarios())
def test_checkpoint_round_trip_preserves_stream_state(scenario):
    base, batches, k, budget = scenario
    engine = StreamingAVTEngine(base, warm_queries=False)
    shadow = base.copy()
    for ops in batches:
        _replay(engine, shadow, ops)
    before = engine.query(k, budget)
    resumed = StreamingAVTEngine.from_state(engine.to_state())
    after = resumed.query(k, budget)
    assert resumed.graph == engine.graph
    assert after.anchors == before.anchors
    assert after.followers == before.followers


@SETTINGS
@given(stream_scenarios())
def test_merged_delta_equals_sequential_application(scenario):
    base, batches, _, _ = scenario
    deltas = []
    sequential = base.copy()
    for ops in batches:
        delta = EdgeDelta.from_iterables(
            inserted=[edge for is_insert, edge in ops if is_insert],
            removed=[edge for is_insert, edge in ops if not is_insert],
        )
        deltas.append(delta)
        delta.apply(sequential)
    merged_graph = base.copy()
    EdgeDelta.merge(*deltas).apply(merged_graph)
    assert merged_graph == sequential
    # graph-aware merge produces the same result with no wasted operations
    cancelled = EdgeDelta.merge(*deltas, base=base)
    cancelled_graph = base.copy()
    cancelled.apply(cancelled_graph)
    assert cancelled_graph == sequential
    assert cancelled.num_changes <= EdgeDelta.merge(*deltas).num_changes
