"""Chaos tests for :mod:`repro.resilience` and the supervision it drives.

Covers the fault-injection mini-language (parsing, deterministic schedules,
crash downgrading outside workers), supervised shard execution on both
executors (retry to bit-identical results, timeout handling, degradation to
the serial executor), the engine's degradation ladder with probe-based
recovery, and the verified checkpoint format (per-section digest detection,
rotation, fallback restore).
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.engine import StreamingAVTEngine
from repro.engine.checkpoint import (
    load_checkpoint,
    read_state,
    rotated_paths,
    save_checkpoint,
    write_state,
)
from repro.errors import (
    CheckpointCorruptionError,
    CheckpointError,
    FaultError,
    ParameterError,
    ShardExecutionError,
)
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph
from repro.obs.metrics import global_registry
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    faults,
    parse_faults,
)
from repro.resilience.retry import default_retry_policy
from repro.shard.coordinator import ShardCoordinator, shutdown_shard_pools
from repro.shard.partition import partition_compact_graph


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """No test leaks an armed plan (programmatic or environment)."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    faults.clear_plan()
    yield
    faults.clear_plan()


def chaos_graph(num_vertices: int = 80, num_edges: int = 260, seed: int = 11) -> Graph:
    import random

    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        u, v = rng.sample(range(num_vertices), 2)
        edges.add((min(u, v), max(u, v)))
    return Graph(edges=sorted(edges))


def make_coordinator(graph: Graph, num_shards: int = 3, **kwargs) -> ShardCoordinator:
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    plan = partition_compact_graph(cgraph, num_shards, "hash")
    return ShardCoordinator(plan, **kwargs)


class TestFaultSpecParsing:
    def test_parse_round_trip(self):
        plan = parse_faults(
            "shard.op:action=crash,executor=process,op=hindex_round,at=2;"
            "checkpoint.bytes:action=corrupt,section=core,times=3;"
            "shard.op:action=slow,delay=0.5,rate=0.25,seed=7"
        )
        assert [spec.site for spec in plan.specs] == [
            "shard.op",
            "checkpoint.bytes",
            "shard.op",
        ]
        crash, corrupt, slow = plan.specs
        assert crash.action == "crash"
        assert crash.match == {"executor": "process", "op": "hindex_round"}
        assert crash.at == 2
        assert corrupt.times == 3
        assert corrupt.match == {"section": "core"}
        assert slow.delay == 0.5 and slow.rate == 0.25 and slow.seed == 7

    @pytest.mark.parametrize(
        "raw",
        [
            "no-colon-here",
            "shard.op:action",
            "shard.op:at=notanumber",
            "shard.op:times=-1",
            "shard.op:rate=2.0",
            "shard.op:action=unknown",
        ],
    )
    def test_malformed_specs_rejected(self, raw):
        with pytest.raises(ParameterError):
            parse_faults(raw)

    def test_times_cap_and_at_pin(self):
        spec = FaultSpec("shard.op", "error", at=2, times=1)
        plan = FaultPlan([spec])
        assert plan.fire("shard.op") is None  # hit 1: before `at`
        with pytest.raises(FaultError):
            plan.fire("shard.op")  # hit 2: fires
        assert plan.fire("shard.op") is None  # spent
        assert spec.fired == 1 and spec.hits >= 2

    def test_rate_draws_are_deterministic(self):
        def firing_pattern(seed):
            spec = FaultSpec("s", "corrupt", rate=0.4, times=0, seed=seed)
            plan = FaultPlan([spec])
            return [plan.fire("s") is not None for _ in range(50)]

        assert firing_pattern(3) == firing_pattern(3)
        assert firing_pattern(3) != firing_pattern(4)

    def test_match_filters_compare_stringified(self):
        plan = FaultPlan([FaultSpec("s", "corrupt", match={"shard": "1"})])
        assert plan.fire("s", shard=0) is None
        assert plan.fire("s", shard=1) is not None

    def test_crash_downgrades_to_error_outside_workers(self):
        # Without allow_crash a crash spec must not take this process down.
        with faults.inject(FaultSpec("shard.op", "crash")):
            with pytest.raises(FaultError):
                faults.fire("shard.op")

    def test_inject_restores_previous_plan(self):
        outer = faults.install_plan(FaultSpec("a", "corrupt"))
        with faults.inject(FaultSpec("b", "corrupt")) as inner:
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_env_plan_cached_and_refreshed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "a:action=corrupt")
        first = faults.active_plan()
        assert first is faults.active_plan()  # cached on the raw string
        monkeypatch.setenv("REPRO_FAULTS", "b:action=corrupt")
        assert faults.active_plan().specs[0].site == "b"

    def test_fired_faults_counted_and_flight_recorded(self):
        from repro.obs.flight import default_recorder

        counter = global_registry().counter(
            "resilience.faults_injected", site="shard.op", action="error"
        )
        before = counter.value
        with faults.inject(FaultSpec("shard.op", "error")):
            with pytest.raises(FaultError):
                faults.fire("shard.op", op="probe")
        assert counter.value == before + 1
        names = [span["name"] for span in default_recorder().record()["spans"]]
        assert "fault.injected" in names


class TestRetryPolicy:
    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(max_retries=4, base_delay=0.1, backoff=2.0, max_delay=0.3)
        delays = [policy.delay_for(attempt, token="t") for attempt in (1, 2, 3, 4)]
        assert all(0.0 < delay <= 0.3 for delay in delays)
        # Deterministic: same token, same delays.
        assert delays == [policy.delay_for(attempt, token="t") for attempt in (1, 2, 3, 4)]
        assert delays != [policy.delay_for(attempt, token="u") for attempt in (1, 2, 3, 4)]

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX", "5")
        monkeypatch.setenv("REPRO_RETRY_BASE_DELAY", "0.25")
        monkeypatch.setenv("REPRO_SHARD_OP_TIMEOUT", "9.5")
        policy = default_retry_policy()
        assert policy.max_retries == 5
        assert policy.base_delay == 0.25
        assert policy.op_timeout == 9.5

    def test_invalid_policy_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff=0.0)


class TestSupervisedSerial:
    def test_transient_kernel_fault_is_retried_bit_identical(self):
        graph = chaos_graph()
        baseline = make_coordinator(graph, executor="serial")
        expected_core, expected_order = baseline.decompose([5])
        baseline.close()

        supervised = make_coordinator(
            graph,
            executor="serial",
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
        )
        with faults.inject(
            FaultSpec("shard.op", "error", match={"op": "hindex_round"}, at=3)
        ):
            core, order = supervised.decompose([5])
        assert core == expected_core
        assert order == expected_order
        stats = supervised.stats()
        assert stats["op_failures"] >= 1
        assert stats["exchange_resumes"] >= 1
        assert stats["degradations"] == 0
        supervised.close()

    def test_transient_cascade_fault_restarts_kernel(self):
        graph = chaos_graph()
        baseline = make_coordinator(graph, executor="serial")
        expected = baseline.k_core_ids(3)
        baseline.close()

        supervised = make_coordinator(
            graph,
            executor="serial",
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
        )
        with faults.inject(
            FaultSpec("shard.op", "error", match={"op": "peel_cascade"}, at=1)
        ):
            assert supervised.k_core_ids(3) == expected
        # An injected fault fires at op entry (shard scratch untouched), so
        # the exchange resumes in place instead of restarting the kernel.
        stats = supervised.stats()
        assert stats["op_failures"] >= 1
        assert stats["exchange_resumes"] + stats["op_retries"] >= 1
        supervised.close()

    def test_persistent_fault_exhausts_into_shard_execution_error(self):
        supervised = make_coordinator(
            chaos_graph(),
            executor="serial",
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        with faults.inject(FaultSpec("shard.op", "error", times=0)):
            with pytest.raises(ShardExecutionError):
                supervised.k_core_ids(3)
        supervised.close()


@pytest.fixture(scope="module")
def process_pools():
    yield
    shutdown_shard_pools()


class TestSupervisedProcess:
    """Spawn-executor chaos: env-armed faults reach the worker processes."""

    def run_with_env_faults(self, monkeypatch, spec: str, retry: RetryPolicy):
        graph = chaos_graph()
        baseline = make_coordinator(graph, executor="serial")
        expected = baseline.decompose([5])
        baseline.close()

        monkeypatch.setenv("REPRO_FAULTS", spec)
        shutdown_shard_pools()  # fresh workers that see the env plan
        try:
            supervised = make_coordinator(
                graph, executor="process", max_workers=3, retry=retry
            )
            got = supervised.decompose([5])
            stats = supervised.stats()
            supervised.close()
        finally:
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            shutdown_shard_pools()  # do not leak chaos-armed workers
        return expected, got, stats

    def test_worker_crash_recovers_bit_identical(self, process_pools, monkeypatch):
        expected, got, stats = self.run_with_env_faults(
            monkeypatch,
            "shard.op:action=crash,executor=process,op=hindex_round,at=2",
            RetryPolicy(max_retries=3, base_delay=0.01, op_timeout=60.0),
        )
        assert got == expected
        assert stats["op_failures"] >= 1
        # Either an in-exchange resume or a kernel retry (or the serial
        # fallback when the env plan keeps killing respawned workers) carried
        # the run to the correct answer.
        assert stats["exchange_resumes"] + stats["op_retries"] + stats["degradations"] >= 1

    def test_slow_worker_hits_deadline_and_recovers(self, process_pools, monkeypatch):
        expected, got, stats = self.run_with_env_faults(
            monkeypatch,
            "shard.op:action=slow,delay=5.0,executor=process,op=hindex_reset,times=1",
            RetryPolicy(max_retries=2, base_delay=0.01, op_timeout=1.0),
        )
        assert got == expected
        assert stats["op_failures"] >= 1

    def test_exhaustion_degrades_to_serial_executor(self, process_pools, monkeypatch):
        expected, got, stats = self.run_with_env_faults(
            monkeypatch,
            "shard.op:action=crash,executor=process,op=hindex_reset",
            RetryPolicy(max_retries=1, base_delay=0.01, op_timeout=30.0),
        )
        assert got == expected
        assert stats["degradations"] == 1

    def test_degradation_disabled_raises(self, process_pools, monkeypatch):
        graph = chaos_graph()
        monkeypatch.setenv("REPRO_FAULTS", "shard.op:action=crash,executor=process,op=hindex_reset")
        shutdown_shard_pools()
        try:
            supervised = make_coordinator(
                graph,
                executor="process",
                max_workers=3,
                retry=RetryPolicy(max_retries=0, base_delay=0.01, op_timeout=30.0),
                degrade_to_serial=False,
            )
            with pytest.raises(ShardExecutionError):
                supervised.decompose([5])
            supervised.close()
        finally:
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            shutdown_shard_pools()


class TestEngineDegradation:
    def test_query_degrades_to_compact_and_recovers(self):
        graph = chaos_graph()
        engine = StreamingAVTEngine(graph, backend="sharded")
        compact = StreamingAVTEngine(graph, backend="compact")
        assert engine.health()["status"] == "ok"

        with faults.inject(FaultSpec("shard.op", "error", times=0)):
            degraded = engine.query(4, 2)
        health = engine.health()
        assert health["status"] == "degraded"
        assert health["backend"] == "compact"
        assert health["degraded"]["from_backend"] == "sharded"
        assert sorted(degraded.anchors) == sorted(compact.query(4, 2).anchors)

        # Substrate healthy again: the next flush probes and migrates back.
        engine.ingest_insert(0, 79)
        engine.flush()
        health = engine.health()
        assert health["status"] == "ok"
        assert health["backend"] == "sharded"
        assert engine.stats.degradations == 1
        assert engine.stats.recovery_probes >= 1
        assert engine.stats.recoveries == 1

    def test_probe_keeps_engine_degraded_while_faults_persist(self):
        engine = StreamingAVTEngine(chaos_graph(), backend="sharded")
        with faults.inject(FaultSpec("shard.op", "error", times=0)):
            engine.query(4, 2)
            engine.ingest_insert(0, 79)
            engine.flush()
            assert engine.health()["status"] == "degraded"
            assert engine.stats.recovery_probes >= 1
            assert engine.stats.recoveries == 0

    def test_construction_under_faults_degrades_instead_of_raising(self):
        with faults.inject(FaultSpec("shard.op", "error", times=0)):
            engine = StreamingAVTEngine(chaos_graph(), backend="sharded")
            result = engine.query(4, 2)
        assert result.anchors is not None
        health = engine.health()
        assert health["status"] == "degraded"
        assert health["backend"] == "compact"
        assert engine.stats.degradations == 1


SECTIONS = ("graph", "core", "warm", "cache", "stats")


def checkpointed_engine() -> StreamingAVTEngine:
    engine = StreamingAVTEngine(
        Graph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e")])
    )
    engine.query(2, 1)
    return engine


def section_regions(path):
    """(start, length) byte regions per manifest section of a checkpoint."""
    with open(path, "rb") as handle:
        header = handle.readline()
        parts = header.split()
        manifest_len = int(parts[2])
        manifest = json.loads(handle.read(manifest_len))
    offset = len(header) + manifest_len
    regions = {}
    for section in manifest["sections"]:
        regions[section["name"]] = (offset, section["length"])
        offset += section["length"]
    return regions


class TestCheckpointVerification:
    def test_format2_round_trip(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path)
        restored = load_checkpoint(path)
        assert restored.to_state()["core"] == engine.to_state()["core"]
        assert restored.query(2, 1).anchors == engine.query(2, 1).anchors

    @pytest.mark.parametrize("section", SECTIONS)
    def test_bit_flip_names_damaged_section(self, tmp_path, section):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path)
        start, length = section_regions(path)[section]
        assert length > 0
        with open(path, "r+b") as handle:
            handle.seek(start + length // 2)
            byte = handle.read(1)
            handle.seek(start + length // 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            read_state(path)
        assert excinfo.value.section == section

    @pytest.mark.parametrize("section", SECTIONS)
    def test_injected_corruption_names_damaged_section(self, tmp_path, section):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        with faults.inject(
            FaultSpec("checkpoint.bytes", "corrupt", match={"section": section})
        ):
            save_checkpoint(engine, path)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            read_state(path)
        assert excinfo.value.section == section

    @pytest.mark.parametrize("section", SECTIONS)
    def test_truncation_names_damaged_section(self, tmp_path, section):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path)
        start, length = section_regions(path)[section]
        with open(path, "r+b") as handle:
            handle.truncate(start + max(0, length - 1))
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            read_state(path)
        # Truncating section S damages S itself; every later section is gone
        # too, but the reader must report the *first* damaged one.
        assert excinfo.value.section == section

    def test_manifest_corruption_detected(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        with faults.inject(FaultSpec("checkpoint.bytes", "corrupt", match={"section": "manifest"})):
            save_checkpoint(engine, path)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            read_state(path)
        assert excinfo.value.section == "manifest"

    def test_rotation_keeps_last_n(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        for _ in range(5):
            save_checkpoint(engine, path, keep=3)
        existing = [p for p in rotated_paths(path, 3) if p.exists()]
        assert [p.name for p in existing] == ["ck", "ck.1", "ck.2"]
        assert not (tmp_path / "ck.3").exists()
        for rotation in existing:
            assert read_state(rotation)["core"] == engine.to_state()["core"]

    def test_fallback_restores_newest_intact_rotation(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path, keep=2)
        save_checkpoint(engine, path, keep=2)
        start, length = section_regions(path)["core"]
        with open(path, "r+b") as handle:
            handle.seek(start)
            handle.write(b"\xff" * min(4, length))
        restored = load_checkpoint(path, fallback=True)
        assert restored.to_state()["core"] == engine.to_state()["core"]
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(path, fallback=False)

    def test_all_rotations_corrupt_reraises_first_error(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path, keep=2)
        save_checkpoint(engine, path, keep=2)
        for candidate in rotated_paths(path, 2):
            with open(candidate, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(size // 2)
                byte = handle.read(1)
                handle.seek(size // 2)
                handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CheckpointError):
            load_checkpoint(path, fallback=True)

    def test_flush_failure_fault_surfaces_as_checkpoint_error(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        with faults.inject(FaultSpec("checkpoint.write", "fail")):
            with pytest.raises(CheckpointError):
                save_checkpoint(engine, path)
        assert not path.exists()

    def test_failed_write_preserves_previous_rotation(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "ck"
        save_checkpoint(engine, path, keep=2)
        with faults.inject(FaultSpec("checkpoint.write", "fail")):
            with pytest.raises(CheckpointError):
                save_checkpoint(engine, path, keep=2)
        # The last good checkpoint survived (as the rotated sibling).
        restored = load_checkpoint(path, fallback=True)
        assert restored.to_state()["core"] == engine.to_state()["core"]

    def test_legacy_format1_still_reads(self, tmp_path):
        engine = checkpointed_engine()
        path = tmp_path / "legacy"
        envelope = {
            "magic": "repro-engine-checkpoint",
            "format": 1,
            "state": engine.to_state(),
        }
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle, protocol=4)
        restored = load_checkpoint(path)
        assert restored.to_state()["core"] == engine.to_state()["core"]

    def test_keep_must_be_positive(self, tmp_path):
        engine = checkpointed_engine()
        with pytest.raises(ParameterError):
            save_checkpoint(engine, tmp_path / "ck", keep=0)

    def test_foreign_file_is_plain_checkpoint_error(self, tmp_path):
        path = tmp_path / "foreign"
        path.write_bytes(b"this is not a checkpoint at all")
        with pytest.raises(CheckpointError) as excinfo:
            read_state(path)
        assert not isinstance(excinfo.value, CheckpointCorruptionError)
