"""Unit tests for the K-order index (Definition 5, Theorem 3)."""

from __future__ import annotations

import pytest

from repro.cores.decomposition import anchored_core_decomposition, core_decomposition
from repro.cores.korder import KOrder
from repro.errors import InvariantViolationError, VertexNotFoundError
from repro.graph.static import Graph

from tests.conftest import random_graph


class TestConstruction:
    def test_from_graph_matches_explicit_decomposition(self, toy_graph):
        direct = KOrder.from_graph(toy_graph)
        explicit = KOrder(toy_graph, core_decomposition(toy_graph))
        assert direct.core_numbers() == explicit.core_numbers()
        assert [direct.rank(v) for v in toy_graph.vertices()] == [
            explicit.rank(v) for v in toy_graph.vertices()
        ]

    def test_contains_and_len(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        assert len(korder) == toy_graph.num_vertices
        assert 7 in korder
        assert 999 not in korder

    def test_missing_vertex_queries_raise(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        with pytest.raises(VertexNotFoundError):
            korder.core(999)
        with pytest.raises(VertexNotFoundError):
            korder.rank(999)
        with pytest.raises(VertexNotFoundError):
            korder.remaining_degree(999)


class TestOrderSemantics:
    def test_precedes_is_consistent_with_core_numbers(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        # A 1-shell vertex precedes every 3-core vertex.
        assert korder.precedes(4, 8)
        assert not korder.precedes(8, 4)

    def test_precedes_is_a_strict_total_order(self, cl_graph):
        korder = KOrder.from_graph(cl_graph)
        vertices = list(cl_graph.vertices())
        for u in vertices[:20]:
            assert not korder.precedes(u, u)
            for v in vertices[:20]:
                if u != v:
                    assert korder.precedes(u, v) != korder.precedes(v, u)

    def test_remaining_degree_counts_later_neighbours(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        for vertex in toy_graph.vertices():
            expected = sum(
                1 for neighbour in toy_graph.neighbors(vertex) if korder.precedes(vertex, neighbour)
            )
            assert korder.remaining_degree(vertex) == expected

    def test_remaining_degree_bounded_by_core(self, cl_graph):
        korder = KOrder.from_graph(cl_graph)
        for vertex in cl_graph.vertices():
            assert korder.remaining_degree(vertex) <= korder.core(vertex)

    def test_shell_sequences_partition_and_respect_rank(self, cl_graph):
        korder = KOrder.from_graph(cl_graph)
        seen = []
        for k, sequence in korder.shells().items():
            assert korder.shell_set(k) == set(sequence)
            ranks = [korder.rank(vertex) for vertex in sequence]
            assert ranks == sorted(ranks)
            seen.extend(sequence)
        assert sorted(seen, key=repr) == sorted(cl_graph.vertices(), key=repr)

    def test_max_core_and_k_core_vertices(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        assert korder.max_core() == 3
        assert korder.k_core_vertices(3) == {8, 9, 12, 13, 16}


class TestCandidatePruning:
    def test_candidates_exclude_k_core_members(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        candidates = korder.candidate_anchors(3)
        assert candidates.isdisjoint({8, 9, 12, 13, 16})

    def test_candidates_include_vertices_with_followers(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        candidates = korder.candidate_anchors(3)
        # Anchoring 10 or 17 produces followers on this graph, so Theorem 3
        # must keep them as candidates.
        assert 10 in candidates
        assert 17 in candidates

    def test_candidates_require_a_shell_neighbour(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        candidates = korder.candidate_anchors(3)
        for candidate in candidates:
            assert any(
                korder.core(neighbour) == 2 for neighbour in toy_graph.neighbors(candidate)
            )

    def test_no_candidates_when_no_shell_exists(self):
        # A clique has no (k-1)-shell for k equal to its core number.
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        korder = KOrder.from_graph(Graph(edges=edges))
        assert korder.candidate_anchors(4) == set()


class TestValidation:
    @pytest.mark.parametrize("seed", range(5))
    def test_fresh_korder_always_validates(self, seed):
        graph = random_graph(seed)
        KOrder.from_graph(graph).validate()

    def test_validation_detects_wrong_core_numbers(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        korder._core[8] = 1  # deliberately corrupt the index
        with pytest.raises(InvariantViolationError):
            korder.validate()

    def test_validation_detects_vertex_set_mismatch(self, toy_graph):
        korder = KOrder.from_graph(toy_graph)
        toy_graph.add_vertex(99)
        with pytest.raises(InvariantViolationError):
            korder.validate()

    def test_anchored_korder_validates_against_own_reference(self, toy_graph):
        decomposition = anchored_core_decomposition(toy_graph, anchors={7})
        korder = KOrder(toy_graph, decomposition)
        korder.validate(reference=decomposition.core)
