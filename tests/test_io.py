"""Unit tests for the SNAP edge-list readers and writers."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import DatasetError
from repro.graph.generators import TemporalEdge, erdos_renyi_graph
from repro.graph.io import (
    read_edge_list,
    read_temporal_edge_list,
    read_temporal_snapshots,
    write_edge_list,
    write_temporal_edge_list,
)


class TestStaticEdgeLists:
    def test_round_trip(self, tmp_path):
        graph = erdos_renyi_graph(30, 60, seed=3)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.edge_set() == graph.edge_set()

    def test_comments_blank_lines_and_duplicates_are_ignored(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph\n"
            "% another comment style\n"
            "\n"
            "1 2\n"
            "2 1\n"
            "2 3\n"
            "3 3\n",
            encoding="utf-8",
        )
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3)
        assert not graph.has_vertex("#")

    def test_string_identifiers_are_preserved(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alice bob\nbob carol\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.has_edge("alice", "bob")

    def test_gzip_input_supported(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "does_not_exist.txt")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justonetoken\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_edge_list(path)


class TestTemporalEdgeLists:
    def test_round_trip_sorted(self, tmp_path):
        events = [
            TemporalEdge(1, 2, 10.0),
            TemporalEdge(2, 3, 5.0),
            TemporalEdge(1, 3, 20.0),
        ]
        path = tmp_path / "temporal.txt"
        write_temporal_edge_list(events, path)
        loaded = read_temporal_edge_list(path)
        assert [event.timestamp for event in loaded] == [5.0, 10.0, 20.0]
        assert {(event.u, event.v) for event in loaded} == {(1, 2), (2, 3), (1, 3)}

    def test_bad_timestamp_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 not_a_number\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_temporal_edge_list(path)

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_temporal_edge_list(path)

    def test_read_temporal_snapshots(self, tmp_path):
        path = tmp_path / "temporal.txt"
        lines = [f"{u} {u + 1} {t}" for t, u in enumerate(range(1, 21))]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        sequence = read_temporal_snapshots(path, num_snapshots=4)
        assert sequence.num_snapshots == 4
        assert sequence[3].num_edges >= sequence[0].num_edges

    def test_read_temporal_snapshots_empty_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            read_temporal_snapshots(path, num_snapshots=3)
