"""Unit tests for incremental core maintenance (EdgeInsert / EdgeRemove, Section 5.2)."""

from __future__ import annotations

import random

import pytest

from repro.cores.decomposition import core_numbers
from repro.cores.maintenance import CoreMaintainer, DeltaEffect
from repro.errors import InvariantViolationError, ParameterError
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph

from tests.conftest import random_graph


class TestSingleEdgeInsertion:
    def test_insertion_updates_graph_and_cores(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2), (2, 3)]))
        increased = maintainer.insert_edge(1, 3)
        assert maintainer.graph.has_edge(1, 3)
        assert increased == {1, 2, 3}
        assert maintainer.core_numbers() == {1: 2, 2: 2, 3: 2}

    def test_inserting_existing_edge_is_noop(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2)]))
        assert maintainer.insert_edge(1, 2) == set()
        assert maintainer.graph.num_edges == 1

    def test_insertion_with_new_vertices(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2)]))
        increased = maintainer.insert_edge(3, 4)
        assert increased == {3, 4}
        assert maintainer.core(3) == 1 and maintainer.core(4) == 1

    def test_insertion_between_isolated_vertices(self):
        maintainer = CoreMaintainer(Graph(vertices=[1, 2]))
        assert maintainer.insert_edge(1, 2) == {1, 2}
        maintainer.validate()

    def test_cross_core_insertion_only_affects_lower_endpoint_side(self):
        # A 4-clique (core 3) plus a pendant path; connecting the path end to
        # the clique cannot change the clique's core numbers.
        clique = [(u, v) for u in range(4) for v in range(u + 1, 4)]
        maintainer = CoreMaintainer(Graph(edges=clique + [(10, 11)]))
        before = {v: maintainer.core(v) for v in range(4)}
        maintainer.insert_edge(11, 0)
        maintainer.validate()
        assert {v: maintainer.core(v) for v in range(4)} == before

    @pytest.mark.parametrize("seed", range(6))
    def test_random_insertions_match_recomputation(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed, num_vertices=30, num_edges=45)
        maintainer = CoreMaintainer(graph)
        vertices = list(graph.vertices())
        for _ in range(40):
            u, v = rng.sample(vertices, 2)
            if not maintainer.graph.has_edge(u, v):
                maintainer.insert_edge(u, v)
        maintainer.validate()


class TestSingleEdgeDeletion:
    def test_deletion_updates_graph_and_cores(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2), (2, 3), (1, 3)]))
        decreased = maintainer.remove_edge(1, 3)
        assert not maintainer.graph.has_edge(1, 3)
        assert decreased == {1, 2, 3}
        assert maintainer.core_numbers() == {1: 1, 2: 1, 3: 1}

    def test_removing_absent_edge_is_noop(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2)]))
        assert maintainer.remove_edge(5, 6) == set()

    def test_deletion_can_cascade(self):
        # A 4-cycle collapses to core 1 when one edge disappears.
        maintainer = CoreMaintainer(Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1)]))
        decreased = maintainer.remove_edge(1, 2)
        assert decreased == {1, 2, 3, 4}
        assert all(value == 1 for value in maintainer.core_numbers().values())

    def test_deletion_to_isolation(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2)]))
        maintainer.remove_edge(1, 2)
        assert maintainer.core_numbers() == {1: 0, 2: 0}

    @pytest.mark.parametrize("seed", range(6))
    def test_random_deletions_match_recomputation(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed, num_vertices=30, num_edges=70)
        maintainer = CoreMaintainer(graph)
        edges = list(maintainer.graph.edges())
        rng.shuffle(edges)
        for u, v in edges[:40]:
            maintainer.remove_edge(u, v)
        maintainer.validate()


class TestMixedWorkloads:
    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_insertions_and_deletions(self, seed):
        rng = random.Random(seed)
        graph = random_graph(seed, num_vertices=25, num_edges=50)
        maintainer = CoreMaintainer(graph)
        vertices = list(graph.vertices())
        for _ in range(80):
            u, v = rng.sample(vertices, 2)
            if maintainer.graph.has_edge(u, v):
                maintainer.remove_edge(u, v)
            else:
                maintainer.insert_edge(u, v)
        maintainer.validate()

    def test_batch_helpers(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2), (2, 3)]))
        increased = maintainer.insert_edges([(1, 3), (3, 4)])
        assert increased
        decreased = maintainer.remove_edges([(3, 4)])
        assert decreased == {4} or 4 in decreased
        maintainer.validate()

    def test_copy_graph_flag(self):
        graph = Graph(edges=[(1, 2)])
        shared = CoreMaintainer(graph, copy_graph=False)
        shared.insert_edge(2, 3)
        assert graph.has_edge(2, 3)
        copied = CoreMaintainer(graph, copy_graph=True)
        copied.insert_edge(3, 4)
        assert not graph.has_edge(3, 4)

    def test_insert_edges_returns_union_of_risen_vertices(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2), (2, 3), (1, 3)]))
        increased = maintainer.insert_edges([(3, 4), (1, 4), (2, 4)])
        # the triangle grows into K4: every vertex ends at core 3
        assert increased == {1, 2, 3, 4}
        maintainer.validate()

    def test_precomputed_core_numbers_skip_decomposition(self, toy_graph):
        reference = CoreMaintainer(toy_graph)
        trusted = CoreMaintainer(toy_graph, core=reference.core_numbers())
        assert trusted.core_numbers() == reference.core_numbers()
        trusted.validate()
        trusted.insert_edge(1, 9)
        trusted.validate()

    def test_refresh_from_graph(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        maintainer = CoreMaintainer(graph, copy_graph=False)
        graph.add_edge(1, 3)  # mutate behind the maintainer's back
        maintainer.refresh_from_graph()
        maintainer.validate()
        assert maintainer.core(1) == 2


class TestApplyDelta:
    def test_apply_delta_reports_affected_pools(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(2, 5)], removed=[(2, 11)])
        effect = maintainer.apply_delta(delta, k=3)
        maintainer.validate()
        assert isinstance(effect, DeltaEffect)
        # Every reported pool member must sit in the (k-1)-shell afterwards.
        for vertex in effect.insertion_affected | effect.deletion_affected:
            assert maintainer.core(vertex) == 2
        assert effect.affected == effect.insertion_affected | effect.deletion_affected

    def test_apply_delta_counts_visited_vertices(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(1, 9)], removed=[(14, 15)])
        effect = maintainer.apply_delta(delta, k=3)
        assert effect.visited >= 1

    def test_apply_delta_without_k_skips_pools(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(1, 9)])
        effect = maintainer.apply_delta(delta)
        assert effect.insertion_affected == set()
        assert effect.deletion_affected == set()

    def test_apply_delta_rejects_bad_k(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        with pytest.raises(ParameterError):
            maintainer.apply_delta(EdgeDelta(), k=0)

    def test_apply_delta_empty_fast_path(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        effect = maintainer.apply_delta(EdgeDelta(), k=3)
        assert effect.touched == set()
        assert effect.changed == set()
        assert effect.visited == 0

    def test_apply_delta_records_touched_without_k(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(2, 5)], removed=[(2, 11)])
        effect = maintainer.apply_delta(delta)
        assert {2, 5} <= effect.insertion_touched
        assert {2, 11} <= effect.deletion_touched
        assert effect.touched == effect.insertion_touched | effect.deletion_touched
        assert effect.changed == effect.increased | effect.decreased

    def test_apply_delta_noop_operations_leave_no_trace(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(8, 9)], removed=[(1, 9)])
        effect = maintainer.apply_delta(delta, k=3)
        assert effect.touched == set()
        assert effect.affected == set()
        assert effect.visited == 0
        maintainer.validate()

    def test_apply_delta_records_pre_update_cores(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        before = maintainer.core_numbers()
        delta = EdgeDelta.from_iterables(inserted=[(2, 5)], removed=[(2, 11)])
        effect = maintainer.apply_delta(delta)
        assert effect.pre_update_core
        for vertex, old_core in effect.pre_update_core.items():
            assert old_core == before[vertex]
        # every touched vertex that existed beforehand has its old core recorded
        for vertex in effect.touched:
            if vertex in before:
                assert vertex in effect.pre_update_core

    def test_pre_update_cores_mark_new_vertices_as_core_zero(self):
        maintainer = CoreMaintainer(Graph(edges=[(1, 2)]))
        effect = maintainer.apply_delta(EdgeDelta.from_iterables(inserted=[(2, 99)]))
        # a vertex the delta created is new at every k: recorded at core 0
        assert effect.pre_update_core[99] == 0
        assert effect.pre_update_core[2] == 1

    def test_affected_pools_derive_from_touched_sets(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        delta = EdgeDelta.from_iterables(inserted=[(2, 5)], removed=[(2, 11)])
        effect = maintainer.apply_delta(delta, k=3)
        assert effect.insertion_affected <= effect.insertion_touched
        assert effect.deletion_affected <= effect.deletion_touched

    def test_snapshot_replay_matches_recomputation(self):
        base = random_graph(3, num_vertices=40, num_edges=90)
        maintainer = CoreMaintainer(base)
        rng = random.Random(7)
        vertices = list(base.vertices())
        current = base.copy()
        for _ in range(5):
            existing = list(current.edges())
            removed = rng.sample(existing, 4)
            inserted = []
            while len(inserted) < 4:
                u, v = rng.sample(vertices, 2)
                if not current.has_edge(u, v):
                    inserted.append((u, v))
            delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
            delta.apply(current)
            maintainer.apply_delta(delta, k=3)
            assert maintainer.core_numbers() == core_numbers(current)

    def test_validate_raises_on_corruption(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        maintainer._kernel._core[8] = 99
        with pytest.raises(InvariantViolationError):
            maintainer.validate()


class TestViews:
    def test_k_core_and_shell_views(self, toy_graph):
        maintainer = CoreMaintainer(toy_graph)
        assert maintainer.k_core_vertices(3) == {8, 9, 12, 13, 16}
        assert maintainer.shell_vertices(1) == {4}
        assert maintainer.core(8) == 3
