"""Unit tests for the static anchored k-core solvers (Greedy, OLAK, RCM, brute force)."""

from __future__ import annotations

import pytest

from repro.anchored.bruteforce import BruteForceAnchoredKCore
from repro.anchored.followers import compute_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.anchored.olak import OLAKAnchoredKCore
from repro.anchored.rcm import RCMAnchoredKCore
from repro.anchored.result import AnchoredKCoreResult
from repro.errors import ParameterError
from repro.graph.generators import chung_lu_graph
from repro.graph.static import Graph

ALL_SOLVERS = [GreedyAnchoredKCore, OLAKAnchoredKCore, RCMAnchoredKCore, BruteForceAnchoredKCore]
HEURISTICS = [GreedyAnchoredKCore, OLAKAnchoredKCore, RCMAnchoredKCore]


class TestResultContract:
    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_result_structure(self, toy_graph, solver_cls):
        result = solver_cls(toy_graph, 3, 2).select()
        assert isinstance(result, AnchoredKCoreResult)
        assert result.k == 3
        assert result.budget == 2
        assert len(result.anchors) <= 2
        assert result.num_followers == len(result.followers)
        assert result.stats.runtime_seconds >= 0
        assert result.summary()

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_reported_followers_are_consistent(self, toy_graph, solver_cls):
        result = solver_cls(toy_graph, 3, 2).select()
        recomputed = compute_followers(toy_graph, 3, result.anchors)
        assert set(result.followers) == recomputed

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_anchored_core_size_matches_definition(self, toy_graph, solver_cls):
        from repro.cores.decomposition import k_core

        result = solver_cls(toy_graph, 3, 2).select()
        expected = len(k_core(toy_graph, 3) | set(result.anchors) | set(result.followers))
        assert result.anchored_core_size == expected

    @pytest.mark.parametrize("solver_cls", ALL_SOLVERS)
    def test_negative_budget_rejected(self, toy_graph, solver_cls):
        with pytest.raises(ParameterError):
            solver_cls(toy_graph, 3, -1)

    @pytest.mark.parametrize("solver_cls", HEURISTICS)
    def test_zero_budget_returns_no_anchors(self, toy_graph, solver_cls):
        result = solver_cls(toy_graph, 3, 0).select()
        assert result.anchors == ()
        assert result.followers == frozenset()


class TestGreedy:
    def test_finds_optimal_pair_on_toy_graph(self, toy_graph):
        result = GreedyAnchoredKCore(toy_graph, 3, 2).select()
        assert set(result.anchors) == {10, 17}
        assert result.num_followers == 7
        assert result.anchored_core_size == 14

    def test_first_anchor_has_maximum_marginal_gain(self, toy_graph):
        result = GreedyAnchoredKCore(toy_graph, 3, 1).select()
        assert result.anchors == (10,)
        assert result.num_followers == 5

    def test_disabling_pruning_does_not_change_the_answer(self, toy_graph):
        pruned = GreedyAnchoredKCore(toy_graph, 3, 2, order_pruning=True).select()
        unpruned = GreedyAnchoredKCore(toy_graph, 3, 2, order_pruning=False).select()
        assert pruned.num_followers == unpruned.num_followers
        assert unpruned.stats.candidates_evaluated >= pruned.stats.candidates_evaluated

    def test_stop_on_zero_gain(self):
        # A clique has no useful anchors: greedy should stop with none selected.
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        result = GreedyAnchoredKCore(Graph(edges=edges), 4, 3).select()
        assert result.anchors == ()

    def test_zero_gain_can_be_allowed(self, toy_graph):
        result = GreedyAnchoredKCore(toy_graph, 3, 8, stop_on_zero_gain=True).select()
        # There are only a few productive anchors; the solver stops early.
        assert len(result.anchors) < 8

    def test_initial_anchors_are_respected(self, toy_graph):
        result = GreedyAnchoredKCore(toy_graph, 3, 2, initial_anchors=[15]).select()
        assert 15 in result.anchors

    def test_budget_larger_than_graph(self, toy_graph):
        result = GreedyAnchoredKCore(toy_graph, 3, 100).select()
        assert len(result.anchors) <= toy_graph.num_vertices


class TestOLAK:
    def test_matches_greedy_quality_on_toy_graph(self, toy_graph):
        olak = OLAKAnchoredKCore(toy_graph, 3, 2).select()
        greedy = GreedyAnchoredKCore(toy_graph, 3, 2).select()
        assert olak.num_followers == greedy.num_followers

    def test_visits_more_than_greedy(self, cl_graph):
        olak = OLAKAnchoredKCore(cl_graph, 4, 3).select()
        greedy = GreedyAnchoredKCore(cl_graph, 4, 3).select()
        assert olak.stats.visited_vertices >= greedy.stats.visited_vertices
        assert olak.stats.candidates_evaluated >= greedy.stats.candidates_evaluated

    def test_same_followers_as_greedy_on_random_graph(self, cl_graph):
        olak = OLAKAnchoredKCore(cl_graph, 4, 3).select()
        greedy = GreedyAnchoredKCore(cl_graph, 4, 3).select()
        assert olak.num_followers == greedy.num_followers


class TestRCM:
    def test_reasonable_quality(self, toy_graph):
        rcm = RCMAnchoredKCore(toy_graph, 3, 2).select()
        greedy = GreedyAnchoredKCore(toy_graph, 3, 2).select()
        assert rcm.num_followers >= 0.5 * greedy.num_followers

    def test_shortlist_size_validation(self, toy_graph):
        with pytest.raises(ParameterError):
            RCMAnchoredKCore(toy_graph, 3, 2, shortlist_size=0)

    def test_larger_shortlist_never_hurts(self, cl_graph):
        small = RCMAnchoredKCore(cl_graph, 4, 3, shortlist_size=2).select()
        large = RCMAnchoredKCore(cl_graph, 4, 3, shortlist_size=50).select()
        assert large.num_followers >= small.num_followers

    def test_evaluates_fewer_candidates_than_olak(self, cl_graph):
        rcm = RCMAnchoredKCore(cl_graph, 4, 3).select()
        olak = OLAKAnchoredKCore(cl_graph, 4, 3).select()
        assert rcm.stats.candidates_evaluated <= olak.stats.candidates_evaluated


class TestBruteForce:
    def test_optimal_on_toy_graph(self, toy_graph):
        result = BruteForceAnchoredKCore(toy_graph, 3, 2).select()
        assert result.num_followers == 7
        assert set(result.anchors) == {10, 17}

    def test_never_worse_than_heuristics(self, toy_graph):
        brute = BruteForceAnchoredKCore(toy_graph, 3, 2).select()
        for solver_cls in HEURISTICS:
            heuristic = solver_cls(toy_graph, 3, 2).select()
            assert brute.num_followers >= heuristic.num_followers

    def test_combination_guard(self, cl_graph):
        with pytest.raises(ParameterError):
            BruteForceAnchoredKCore(cl_graph, 4, 5, max_combinations=10).select()

    def test_explicit_universe(self, toy_graph):
        result = BruteForceAnchoredKCore(
            toy_graph, 3, 2, candidate_universe=[7, 10, 15]
        ).select()
        assert set(result.anchors) <= {7, 10, 15}
        assert result.num_followers == 6  # best pair within the restricted universe

    def test_budget_zero(self, toy_graph):
        result = BruteForceAnchoredKCore(toy_graph, 3, 0).select()
        assert result.anchors == ()
        assert result.num_followers == 0


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("k", [3, 4])
    def test_heuristics_close_to_optimal_on_small_random_graphs(self, k):
        graph = chung_lu_graph(40, 110, skew=1.1, seed=k)
        brute = BruteForceAnchoredKCore(graph, k, 2, max_combinations=5_000_000).select()
        greedy = GreedyAnchoredKCore(graph, k, 2).select()
        assert greedy.num_followers <= brute.num_followers
        # Greedy for anchored k-core has no approximation guarantee, but on
        # small instances it should find most of the optimum.
        if brute.num_followers:
            assert greedy.num_followers >= 0.5 * brute.num_followers
