"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.graph.generators import barabasi_albert_graph, chung_lu_graph, erdos_renyi_graph
from repro.graph.datasets import toy_example_evolving_graph, toy_example_graph
from repro.graph.static import Graph


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert a repro Graph into a networkx Graph (used as an oracle)."""
    converted = nx.Graph()
    converted.add_nodes_from(graph.vertices())
    converted.add_edges_from(graph.edges())
    return converted


def random_graph(seed: int, num_vertices: int = 40, num_edges: int = 80) -> Graph:
    """Small deterministic random graph for unit tests."""
    return erdos_renyi_graph(num_vertices, num_edges, seed=seed)


@pytest.fixture
def toy_graph() -> Graph:
    """The 17-user Figure-1 style community."""
    return toy_example_graph()


@pytest.fixture
def toy_evolving():
    """Two-snapshot evolving version of the toy community."""
    return toy_example_evolving_graph()


@pytest.fixture
def triangle_graph() -> Graph:
    """A single triangle plus one pendant vertex."""
    graph = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    return graph


@pytest.fixture
def ba_graph() -> Graph:
    """A small Barabási–Albert graph with a non-trivial core structure."""
    return barabasi_albert_graph(60, 3, seed=11)


@pytest.fixture
def cl_graph() -> Graph:
    """A small Chung–Lu graph with a graded shell structure."""
    return chung_lu_graph(80, 240, skew=1.2, seed=5)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for tests that need randomness."""
    return random.Random(1234)
