"""Unit tests for the incremental tracker (IncAVT, Algorithm 6)."""

from __future__ import annotations

import pytest

from repro.anchored.followers import compute_followers
from repro.avt.incremental import IncAVTTracker
from repro.avt.problem import AVTProblem
from repro.avt.trackers import GreedyTracker, OLAKTracker
from repro.graph.datasets import load_dataset, toy_example_evolving_graph
from repro.graph.dynamic import EdgeDelta, EvolvingGraph
from repro.graph.static import Graph


@pytest.fixture
def toy_problem():
    return AVTProblem(toy_example_evolving_graph(), k=3, budget=2, name="toy")


@pytest.fixture
def gnutella_problem():
    evolving = load_dataset("gnutella", num_snapshots=5, scale=0.2, seed=4)
    return AVTProblem(evolving, k=3, budget=3, name="gnutella")


class TestBasicBehaviour:
    def test_one_result_per_snapshot(self, toy_problem):
        result = IncAVTTracker().track(toy_problem)
        assert len(result) == 2
        assert result.algorithm == "IncAVT"

    def test_first_snapshot_matches_greedy(self, toy_problem):
        incremental = IncAVTTracker().track(toy_problem)
        greedy = GreedyTracker().track(toy_problem, max_snapshots=1)
        assert set(incremental.snapshots[0].anchors) == set(greedy.snapshots[0].anchors)
        assert incremental.snapshots[0].num_followers == greedy.snapshots[0].num_followers

    def test_budget_respected(self, gnutella_problem):
        result = IncAVTTracker().track(gnutella_problem)
        for snapshot in result:
            assert len(snapshot.anchors) <= gnutella_problem.budget

    def test_reported_followers_match_recomputation(self, toy_problem):
        result = IncAVTTracker().track(toy_problem)
        snapshots = list(toy_problem.evolving_graph.snapshots())
        for snapshot_result, graph in zip(result, snapshots):
            expected = compute_followers(graph, 3, snapshot_result.anchors)
            assert set(snapshot_result.result.followers) == expected

    def test_max_snapshots(self, gnutella_problem):
        result = IncAVTTracker().track(gnutella_problem, max_snapshots=2)
        assert len(result) == 2

    def test_empty_horizon(self, toy_problem):
        result = IncAVTTracker().track(toy_problem, max_snapshots=0)
        assert len(result) == 0


class TestRefreshAnchors:
    def test_refresh_swaps_against_affected_pool(self, toy_problem):
        from repro.cores.maintenance import CoreMaintainer

        evolving = toy_problem.evolving_graph
        maintainer = CoreMaintainer(evolving.base)
        from repro.anchored.greedy import GreedyAnchoredKCore

        first = GreedyAnchoredKCore(maintainer.graph, 3, 2).select()
        effect = maintainer.apply_delta(evolving.deltas[0], k=3)
        anchors, stats = IncAVTTracker().refresh_anchors(
            maintainer, 3, 2, first.anchors, effect.affected
        )
        assert len(anchors) <= 2
        # the swap/fill pass never does worse than carrying the old set forward
        refreshed = compute_followers(maintainer.graph, 3, anchors)
        carried = compute_followers(maintainer.graph, 3, first.anchors)
        assert len(refreshed) >= len(carried)
        assert stats.iterations >= 0

    def test_refresh_truncates_to_budget_and_rejects_negative(self, toy_problem):
        from repro.cores.maintenance import CoreMaintainer
        from repro.errors import ParameterError

        maintainer = CoreMaintainer(toy_problem.evolving_graph.base)
        anchors, _ = IncAVTTracker().refresh_anchors(maintainer, 3, 1, (7, 10), set())
        assert len(anchors) <= 1
        with pytest.raises(ParameterError):
            IncAVTTracker().refresh_anchors(maintainer, 3, -1, (), set())


class TestIncrementalAdvantage:
    def test_visits_fewer_candidates_than_per_snapshot_greedy(self, gnutella_problem):
        incremental = IncAVTTracker().track(gnutella_problem)
        greedy = GreedyTracker().track(gnutella_problem)
        assert incremental.total_visited_vertices <= greedy.total_visited_vertices
        assert incremental.total_candidates_evaluated <= greedy.total_candidates_evaluated

    def test_visits_far_fewer_than_olak(self, gnutella_problem):
        incremental = IncAVTTracker().track(gnutella_problem)
        olak = OLAKTracker().track(gnutella_problem)
        assert incremental.total_visited_vertices < olak.total_visited_vertices

    def test_quality_stays_close_to_greedy(self, gnutella_problem):
        incremental = IncAVTTracker().track(gnutella_problem)
        greedy = GreedyTracker().track(gnutella_problem)
        if greedy.total_followers:
            assert incremental.total_followers >= 0.6 * greedy.total_followers

    def test_anchor_sets_are_stable_under_smooth_evolution(self, gnutella_problem):
        from repro.avt.metrics import anchor_stability

        result = IncAVTTracker().track(gnutella_problem)
        assert anchor_stability(result) >= 0.5


class TestConfiguration:
    def test_no_change_deltas_keep_anchors(self, toy_graph):
        evolving = EvolvingGraph(base=toy_graph.copy(), deltas=[EdgeDelta(), EdgeDelta()])
        problem = AVTProblem(evolving, k=3, budget=2, name="static")
        result = IncAVTTracker().track(problem)
        anchor_sets = {tuple(sorted(anchors, key=repr)) for anchors in result.anchor_sets}
        assert len(anchor_sets) == 1
        assert [s.num_followers for s in result] == [7, 7, 7]

    def test_restart_on_heavy_churn(self, toy_graph):
        # Replace nearly every edge: the tracker should fall back to Greedy.
        base = toy_graph.copy()
        removed = list(base.edges())[:20]
        inserted = [(1, 8), (1, 9), (4, 12), (4, 13), (17, 12), (17, 13)]
        delta = EdgeDelta.from_iterables(inserted=inserted, removed=removed)
        evolving = EvolvingGraph(base=base, deltas=[delta])
        problem = AVTProblem(evolving, k=3, budget=2, name="churny")
        with_restart = IncAVTTracker(restart_churn_ratio=0.15).track(problem)
        without_restart = IncAVTTracker(restart_churn_ratio=None).track(problem)
        # Both must report follower sets consistent with their anchors.
        final_graph = list(evolving.snapshots())[-1]
        for result in (with_restart, without_restart):
            expected = compute_followers(final_graph, 3, result.snapshots[-1].anchors)
            assert set(result.snapshots[-1].result.followers) == expected
        # The restart path re-solves the heavy-churn snapshot exactly like a
        # from-scratch Greedy run on the same graph.
        greedy = GreedyTracker().track(problem)
        assert (
            with_restart.snapshots[-1].num_followers
            == greedy.snapshots[-1].num_followers
        )

    def test_swap_all_anchors_variant(self, gnutella_problem):
        literal = IncAVTTracker(swap_all_anchors=True).track(gnutella_problem)
        default = IncAVTTracker().track(gnutella_problem)
        assert literal.total_followers >= 0.9 * default.total_followers

    def test_fill_budget_disabled(self, toy_problem):
        result = IncAVTTracker(fill_budget=False).track(toy_problem)
        assert len(result) == 2

    def test_zero_budget(self, toy_evolving):
        problem = AVTProblem(toy_evolving, k=3, budget=0, name="toy")
        result = IncAVTTracker().track(problem)
        for snapshot in result:
            assert snapshot.anchors == ()
            assert snapshot.num_followers == 0
