"""Tests for the PR-9 analysis tier: :mod:`repro.obs.analyze`,
:mod:`repro.obs.profile`, :mod:`repro.obs.flight`, histogram exemplars and
the ``avt-bench trace`` CLI.

Includes the acceptance criteria: the critical path of a serve-sim
``--trace-out`` artifact sums to within 10% of the root span's wall time,
and the straggler report reconciles exactly with the coordinator's
``exchange_waves`` / ``ops_dispatched`` counters.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cli import main
from repro.engine import StreamingAVTEngine
from repro.engine.stats import EngineStats
from repro.errors import CheckpointError, ParameterError
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph
from repro.obs.profile import UNTRACED
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SamplingProfiler,
    build_span_trees,
    critical_path,
    critical_path_by_name,
    default_recorder,
    diff_traces,
    flame_stacks,
    read_spans_jsonl,
    render_collapsed,
    render_tree,
    self_time_by_name,
    straggler_report,
    tracer,
)
from repro.shard.coordinator import ShardCoordinator
from repro.shard.partition import partition_compact_graph


@pytest.fixture
def traced():
    previous = tracer.set_enabled(True)
    tracer.drain()
    yield
    tracer.drain()
    tracer.set_enabled(previous)


def _span(name, span_id, parent_id, start, duration, **attrs):
    """Synthetic span dict with exact, hand-chosen intervals."""
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": "t-1",
        "pid": 1,
        "start": start,
        "duration": duration,
        "attrs": attrs,
    }


def _busy(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestSpanTrees:
    def test_forest_reconstruction_and_ordering(self):
        spans = [
            _span("child.b", "s3", "s1", 6.0, 2.0),
            _span("root", "s1", None, 0.0, 10.0),
            _span("child.a", "s2", "s1", 1.0, 3.0),
            _span("other.root", "s9", "missing-parent", 20.0, 1.0),
        ]
        roots = build_span_trees(spans)
        assert [root.name for root in roots] == ["root", "other.root"]
        root = roots[0]
        assert [child.name for child in root.children] == ["child.a", "child.b"]
        assert root.children[0].parent is root
        assert root.end == 10.0
        assert [node.name for node in root.walk()] == ["root", "child.a", "child.b"]

    def test_self_time_clamps_for_concurrent_children(self):
        # Async fan-out: two children overlap, their durations sum past the
        # parent's wall time; self time must clamp at zero, not go negative.
        spans = [
            _span("wave", "w1", None, 0.0, 1.0),
            _span("op", "o1", "w1", 0.0, 0.9, shard=0),
            _span("op", "o2", "w1", 0.05, 0.9, shard=1),
        ]
        (root,) = build_span_trees(spans)
        assert root.self_time == 0.0
        totals = self_time_by_name(spans)
        assert totals["wave"]["self_seconds"] == 0.0
        assert totals["op"]["self_seconds"] == pytest.approx(1.8)


class TestCriticalPath:
    def test_sequential_children_and_gaps(self):
        # root [0,10]: a [1,4], b [5,9] -> path: root 1s, a 3s, root 1s, b 4s, root 1s
        spans = [
            _span("root", "s1", None, 0.0, 10.0),
            _span("a", "s2", "s1", 1.0, 3.0),
            _span("b", "s3", "s1", 5.0, 4.0),
        ]
        (root,) = build_span_trees(spans)
        steps = critical_path(root)
        assert [(step.node.name, step.seconds) for step in steps] == [
            ("root", 1.0),
            ("a", 3.0),
            ("root", 1.0),
            ("b", 4.0),
            ("root", 1.0),
        ]
        assert sum(step.seconds for step in steps) == pytest.approx(root.duration)
        by_name = critical_path_by_name(steps)
        assert by_name == {"root": 3.0, "a": 3.0, "b": 4.0}

    def test_concurrent_children_last_finisher_wins(self):
        # Two overlapping children: the straggler (later end) owns the
        # overlap; the early child only contributes its unshadowed prefix.
        spans = [
            _span("exchange", "e1", None, 0.0, 10.0),
            _span("fast", "f1", "e1", 0.0, 4.0),
            _span("slow", "f2", "e1", 1.0, 9.0),
        ]
        (root,) = build_span_trees(spans)
        steps = critical_path(root)
        assert [(step.node.name, step.seconds) for step in steps] == [
            ("fast", 1.0),
            ("slow", 9.0),
        ]
        assert sum(step.seconds for step in steps) == pytest.approx(10.0)

    def test_nested_recursion_and_full_coverage(self):
        spans = [
            _span("root", "r", None, 0.0, 8.0),
            _span("mid", "m", "r", 2.0, 5.0),
            _span("leaf", "l", "m", 3.0, 2.0),
        ]
        (root,) = build_span_trees(spans)
        steps = critical_path(root)
        assert sum(step.seconds for step in steps) == pytest.approx(8.0)
        names = [step.node.name for step in steps]
        assert names == ["root", "mid", "leaf", "mid", "root"]

    def test_real_trace_sums_to_root_wall(self, traced):
        with tracer.span("outer"):
            with tracer.span("first"):
                _busy(0.01)
            with tracer.span("second"):
                with tracer.span("inner"):
                    _busy(0.01)
        (root,) = build_span_trees(tracer.drain())
        steps = critical_path(root)
        total = sum(step.seconds for step in steps)
        assert total == pytest.approx(root.duration, rel=1e-3)


class TestFlamegraph:
    def test_collapsed_stack_output(self):
        spans = [
            _span("root", "s1", None, 0.0, 10.0),
            _span("a", "s2", "s1", 1.0, 3.0),
            _span("b", "s3", "s1", 5.0, 4.0),
            _span("a.inner", "s4", "s2", 1.5, 1.0),
        ]
        stacks = flame_stacks(spans)
        assert stacks == {
            "root": pytest.approx(3.0),
            "root;a": pytest.approx(2.0),
            "root;a;a.inner": pytest.approx(1.0),
            "root;b": pytest.approx(4.0),
        }
        collapsed = render_collapsed(stacks)
        lines = collapsed.splitlines()
        assert "root 3000000" in lines
        assert "root;a;a.inner 1000000" in lines
        # standard collapsed format: one "stack<space>integer" per line
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and weight.isdigit()

    def test_render_tree_depth_limit(self):
        spans = [
            _span("root", "s1", None, 0.0, 1.0),
            _span("mid", "s2", "s1", 0.0, 0.5),
            _span("leaf", "s3", "s2", 0.0, 0.25),
        ]
        full = render_tree(build_span_trees(spans))
        assert "leaf" in full and "  mid" in full
        shallow = render_tree(build_span_trees(spans), max_depth=1)
        assert "leaf" not in shallow and "mid" in shallow


class TestDiff:
    def test_delta_attributed_per_name(self):
        before = [
            _span("root", "s1", None, 0.0, 10.0),
            _span("solve", "s2", "s1", 0.0, 6.0),
        ]
        after = [
            _span("root", "x1", None, 0.0, 15.0),
            _span("solve", "x2", "x1", 0.0, 12.0),
        ]
        report = diff_traces(before, after)
        by_name = {entry["name"]: entry for entry in report["by_name"]}
        assert by_name["solve"]["delta_seconds"] == pytest.approx(6.0)
        assert by_name["root"]["delta_seconds"] == pytest.approx(-1.0)
        assert report["delta_seconds"] == pytest.approx(5.0)
        # sorted by |delta|: solve moved most
        assert report["by_name"][0]["name"] == "solve"

    def test_empty_diff_raises(self):
        with pytest.raises(ParameterError):
            diff_traces([], [])


def _coupled_graph(n=36):
    """Ring + chords: every hash shard has boundary edges to its neighbours,
    so async exchanges need several waves and resubmissions to converge."""
    edges = [(i, (i + 1) % n) for i in range(n)] + [(i, (i + 5) % n) for i in range(n)]
    return Graph(edges=edges, vertices=range(n))


class TestStragglerReconciliation:
    """Acceptance criterion: report totals == coordinator counters, exactly."""

    def test_report_reconciles_with_coordinator_counters(self, traced):
        cgraph = CompactGraph.from_graph(_coupled_graph(), ordered=True)
        coordinator = ShardCoordinator(partition_compact_graph(cgraph, 3))
        with tracer.span("test.root"):
            coordinator.decompose(anchor_ids=[0, 7])
            coordinator.k_core_ids(3, [1])
        spans = tracer.drain()

        report = straggler_report(spans)
        assert report["num_exchanges"] > 0
        assert report["total_waves"] == coordinator.exchange_waves
        assert report["total_ops_dispatched"] == coordinator.ops_dispatched

        for entry in report["exchanges"]:
            assert entry["wall_seconds"] > 0
            assert entry["waves"] >= 1
            assert entry["skew"] >= 1.0
            for shard_entry in entry["shards"].values():
                assert 0.0 <= shard_entry["busy_fraction"]
                assert shard_entry["ops"] >= 1
            # resubmissions = ops beyond each shard's initial submission
            assert entry["resubmissions"] == entry["ops"] - len(entry["shards"])

    def test_no_exchanges_yields_empty_report(self):
        report = straggler_report(
            [_span("engine.query", "s1", None, 0.0, 1.0)]
        )
        assert report["num_exchanges"] == 0
        assert report["total_waves"] == 0
        assert report["total_ops_dispatched"] == 0


class TestServeSimCriticalPath:
    """Acceptance criterion: the CLI critical path on a serve-sim trace
    covers the root span's wall time to within 10%."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "serve.jsonl"
        code = main(
            [
                "serve-sim",
                "--dataset",
                "gnutella",
                "--scale",
                "0.15",
                "--snapshots",
                "4",
                "--budget",
                "3",
                "--trace-out",
                str(path),
            ]
        )
        tracer.drain()
        assert code == 0
        return path

    def test_critical_path_covers_root_wall(self, trace_path):
        spans = read_spans_jsonl(trace_path)
        queries = [
            root for root in build_span_trees(spans) if root.name == "engine.query"
        ]
        assert queries
        for root in queries:
            steps = critical_path(root)
            total = sum(step.seconds for step in steps)
            assert total == pytest.approx(root.duration, rel=0.10)

    def test_cli_critical_path_prints_covering_chain(self, trace_path, capsys):
        assert (
            main(["trace", "critical-path", str(trace_path), "--root", "engine.query"])
            == 0
        )
        output = capsys.readouterr().out
        assert "critical path through 'engine.query'" in output
        # "critical path covers Xms of Yms wall (Z%)" with Z within 10% of 100
        tail = output.strip().splitlines()[-1]
        pct = float(tail.rsplit("(", 1)[1].rstrip("%)"))
        assert 90.0 <= pct <= 110.0

    def test_cli_tree_flame_and_diff(self, trace_path, tmp_path, capsys):
        assert main(["trace", "tree", str(trace_path), "--top", "2", "--depth", "2"]) == 0
        assert "engine.query" in capsys.readouterr().out

        out_path = tmp_path / "collapsed.txt"
        assert main(["trace", "flame", str(trace_path), "--out", str(out_path)]) == 0
        collapsed = out_path.read_text(encoding="utf-8")
        assert any(
            line.startswith("engine.query") for line in collapsed.splitlines()
        )
        capsys.readouterr()

        assert main(["trace", "tree", str(trace_path), "--diff", str(trace_path)]) == 0
        diff_output = capsys.readouterr().out
        assert "latency delta by span name" in diff_output
        assert "(+0.000ms)" in diff_output

    def test_cli_stragglers_smoke(self, trace_path, capsys):
        # The serve-sim backend is auto-selected; either outcome is a valid
        # straggler report for this trace.
        assert main(["trace", "stragglers", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "no shard.exchange spans" in output or "totals:" in output

    def test_cli_errors_are_reported(self, tmp_path, capsys):
        assert main(["trace", "critical-path", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert main(["trace", "critical-path", str(empty)]) == 2


class TestSamplingProfiler:
    def test_samples_attributed_to_open_spans(self, traced):
        with SamplingProfiler(hz=200) as profiler:
            with tracer.span("profiled.outer"):
                with tracer.span("profiled.inner"):
                    _busy(0.25)
        assert not profiler.running
        assert profiler.samples > 0
        assert profiler.duration_seconds > 0.2

        # Idle helper threads (executor queue managers, etc.) sample as
        # <untraced>; the hottest *traced* stack must be the busy spans.
        traced_entries = [
            entry
            for entry in profiler.span_profile()
            if entry["stack"] != list(UNTRACED)
        ]
        assert traced_entries, "no span-attributed samples"
        hottest = traced_entries[0]
        assert hottest["stack"] == ["profiled.outer", "profiled.inner"]
        assert hottest["samples"] > 0
        assert 0.0 < hottest["fraction"] <= 1.0

        code_profile = profiler.code_profile()
        assert code_profile
        assert any(
            any("_busy" in frame for frame in entry["stack"])
            for entry in code_profile
        )

    def test_collapsed_output_and_untraced_attribution(self):
        previous = tracer.set_enabled(False)
        try:
            with SamplingProfiler(hz=200) as profiler:
                _busy(0.1)
        finally:
            tracer.set_enabled(previous)
        assert profiler.samples > 0
        collapsed = profiler.collapsed("span")
        assert collapsed.startswith("<untraced> ")
        for line in profiler.collapsed("code").splitlines():
            stack, _, weight = line.rpartition(" ")
            assert stack and weight.isdigit()

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=0)
        with pytest.raises(ParameterError):
            SamplingProfiler(hz=100000)
        profiler = SamplingProfiler(hz=50)
        with pytest.raises(ParameterError):
            profiler.collapsed("nope")
        profiler.start()
        try:
            with pytest.raises(ParameterError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_records_registry_gauges(self):
        from repro.obs import global_registry

        with SamplingProfiler(hz=120):
            _busy(0.05)
        registry = global_registry()
        assert registry.gauge("obs.profiler.hz").value == 120
        assert registry.gauge("obs.profiler.samples").value >= 0


class TestFlightRecorder:
    def test_ring_is_bounded(self, traced):
        recorder = FlightRecorder(capacity=3, auto_dump_on_error=False)
        recorder.install()
        try:
            for index in range(7):
                with tracer.span("ring", index=index):
                    pass
        finally:
            recorder.uninstall()
        assert len(recorder) == 3
        record = recorder.record()
        assert [entry["attrs"]["index"] for entry in record["spans"]] == [4, 5, 6]

    def test_error_span_triggers_auto_dump(self, traced):
        recorder = FlightRecorder(capacity=16)
        recorder.install()
        try:
            with tracer.span("setup"):
                pass
            with pytest.raises(RuntimeError):
                with tracer.span("exploding"):
                    raise RuntimeError("boom")
        finally:
            recorder.uninstall()
        assert len(recorder.dumps) == 1
        dump = recorder.dumps[0]
        assert dump["reason"] == "span-error:exploding"
        assert dump["context"]["error"] == "RuntimeError"
        assert [entry["name"] for entry in dump["spans"]] == ["setup", "exploding"]

    def test_metric_deltas_since_baseline(self):
        from repro.obs import global_registry

        recorder = FlightRecorder(capacity=4, auto_dump_on_error=False)
        counter = global_registry().counter("test.flight.delta")
        counter.inc(5)
        deltas = {entry["name"]: entry["delta"] for entry in recorder.metric_deltas()}
        assert deltas["test.flight.delta"] == 5
        # dump rolls the baseline
        recorder.dump("manual")
        assert all(
            entry["name"] != "test.flight.delta" for entry in recorder.metric_deltas()
        )

    def test_dump_writes_file_when_dir_configured(self, tmp_path, traced):
        recorder = FlightRecorder(capacity=4, dump_dir=str(tmp_path))
        recorder.install()
        try:
            with tracer.span("kept"):
                pass
            recorder.dump("manual-test", detail=42)
        finally:
            recorder.uninstall()
        files = list(tmp_path.glob("flight-*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text(encoding="utf-8"))
        assert payload["reason"] == "manual-test"
        assert payload["context"] == {"detail": 42}
        assert [entry["name"] for entry in payload["spans"]] == ["kept"]

    def test_default_recorder_survives_disabled_tracing(self, traced):
        recorder = default_recorder()
        with tracer.span("before.disable"):
            pass
        tracer.drain()
        ring_names = [entry["name"] for entry in recorder.record()["spans"]]
        assert "before.disable" in ring_names
        tracer.set_enabled(False)
        with tracer.span("while.disabled"):
            pass
        # nothing recorded while disabled, but the ring is intact
        ring_names = [entry["name"] for entry in recorder.record()["spans"]]
        assert "while.disabled" not in ring_names
        assert "before.disable" in ring_names

    def test_engine_flight_record_exposes_recent_spans(self, traced):
        engine = StreamingAVTEngine(Graph(edges=[(0, 1), (1, 2), (2, 0)]))
        engine.query(2, 1)
        tracer.drain()
        record = engine.flight_record()
        assert {"spans", "metric_deltas", "dumps", "capacity"} <= set(record)
        assert any(entry["name"] == "engine.query" for entry in record["spans"])

    def test_checkpoint_failure_dumps_flight_record(self, tmp_path, traced):
        engine = StreamingAVTEngine(Graph(edges=[(0, 1), (1, 2), (2, 0)]))
        engine.query(2, 1)
        recorder = default_recorder()
        # The dump deque is bounded, so identify our dumps by the unique tmp
        # paths rather than by position (earlier tests may have filled it).
        bad_path = tmp_path / "no-such-dir" / "ck.json"
        with pytest.raises(CheckpointError):
            engine.checkpoint(bad_path)
        dump = next(
            d
            for d in recorder.dumps
            if d["reason"] == "checkpoint-save-failed"
            and d["context"]["path"] == str(bad_path)
        )
        assert dump["context"]["error"]

        missing = tmp_path / "missing.json"
        with pytest.raises(CheckpointError):
            StreamingAVTEngine.restore(missing)
        assert any(
            d["reason"] == "checkpoint-restore-failed"
            and d["context"]["path"] == str(missing)
            for d in recorder.dumps
        )


class TestExemplars:
    def test_histogram_keeps_slowest_recent_per_bucket(self):
        histogram = MetricsRegistry().histogram("engine.latency.cold")
        histogram.observe(0.010, trace_id="trace-slowish")
        histogram.observe(0.012, trace_id="trace-slowest")
        histogram.observe(0.011, trace_id="trace-middling")
        histogram.observe(0.00001, trace_id="trace-fast")
        histogram.observe(0.5)  # no trace id: counted, no exemplar
        slow_bucket = histogram.bucket_index(0.012)
        fast_bucket = histogram.bucket_index(0.00001)
        assert histogram.exemplars[slow_bucket] == (0.012, "trace-slowest")
        assert histogram.exemplars[fast_bucket] == (0.00001, "trace-fast")
        assert histogram.bucket_index(0.5) not in histogram.exemplars

    def test_exemplars_serialise_and_restore(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("engine.latency.hit")
        histogram.observe(0.004, trace_id="t-99")
        snapshot = registry.snapshot()
        (entry,) = snapshot
        bucket = str(histogram.bucket_index(0.004))
        assert entry["value"]["exemplars"][bucket] == {
            "value": 0.004,
            "trace_id": "t-99",
        }
        json.dumps(snapshot)
        restored = MetricsRegistry()
        restored.restore(snapshot)
        assert restored.snapshot() == snapshot

    def test_engine_latency_exemplars_link_to_query_traces(self, traced):
        engine = StreamingAVTEngine(Graph(edges=[(0, 1), (1, 2), (2, 0), (0, 3)]))
        engine.query(2, 1)
        engine.query(2, 1)  # cache hit
        spans = tracer.drain()
        trace_ids = {
            entry["trace_id"] for entry in spans if entry["name"] == "engine.query"
        }
        for path in ("cold", "hit"):
            histogram = engine.stats.latency_histogram(path)
            assert histogram.exemplars, f"no exemplar on the {path} path"
            for _, trace_id in histogram.exemplars.values():
                assert trace_id in trace_ids

    def test_untraced_queries_record_no_exemplars(self):
        stats = EngineStats()
        stats.observe_latency("hit", 0.001)
        assert stats.latency_histogram("hit").exemplars == {}
