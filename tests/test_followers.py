"""Unit tests for follower computation (Definitions 3-4, Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.anchored.followers import (
    anchored_k_core,
    compute_followers,
    follower_gain,
    full_shell_followers,
    marginal_followers,
)
from repro.cores.decomposition import core_numbers, k_core
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.generators import chung_lu_graph
from repro.graph.static import Graph


class TestAnchoredKCore:
    def test_without_anchors_equals_plain_k_core(self, toy_graph):
        assert anchored_k_core(toy_graph, 3) == k_core(toy_graph, 3)

    def test_example_3(self, toy_graph):
        anchored = anchored_k_core(toy_graph, 3, {7, 10})
        assert anchored == {2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 16}

    def test_anchors_always_included(self, toy_graph):
        # Even an isolated-ish, low-degree vertex stays once anchored.
        assert 4 in anchored_k_core(toy_graph, 3, {4})

    def test_monotone_in_anchor_set(self, cl_graph):
        vertices = sorted(cl_graph.vertices(), key=repr)
        small = anchored_k_core(cl_graph, 4, vertices[:2])
        large = anchored_k_core(cl_graph, 4, vertices[:5])
        assert small <= large

    def test_k_zero_returns_everything(self, toy_graph):
        assert anchored_k_core(toy_graph, 0) == set(toy_graph.vertices())

    def test_unknown_anchor_raises(self, toy_graph):
        with pytest.raises(VertexNotFoundError):
            anchored_k_core(toy_graph, 3, {999})

    def test_negative_k_raises(self, toy_graph):
        with pytest.raises(ParameterError):
            anchored_k_core(toy_graph, -1)


class TestComputeFollowers:
    def test_example_3_followers(self, toy_graph):
        assert compute_followers(toy_graph, 3, {7, 10}) == {2, 3, 5, 6, 11}

    def test_example_6_followers(self, toy_graph):
        assert compute_followers(toy_graph, 3, {15}) == {14}

    def test_followers_exclude_anchors_and_core(self, toy_graph):
        followers = compute_followers(toy_graph, 3, {7, 10})
        assert followers.isdisjoint({7, 10})
        assert followers.isdisjoint(k_core(toy_graph, 3))

    def test_anchoring_core_member_gains_nothing(self, toy_graph):
        assert compute_followers(toy_graph, 3, {8}) == set()

    def test_precomputed_core_is_honoured(self, toy_graph):
        plain = k_core(toy_graph, 3)
        assert compute_followers(toy_graph, 3, {7, 10}, k_core_vertices=plain) == {2, 3, 5, 6, 11}

    def test_empty_anchor_set_has_no_followers(self, toy_graph):
        assert compute_followers(toy_graph, 3, ()) == set()

    def test_follower_gain_matches_difference(self, toy_graph):
        gain = follower_gain(toy_graph, 3, [15], 10)
        with_both = compute_followers(toy_graph, 3, {15, 10})
        with_base = compute_followers(toy_graph, 3, {15})
        assert gain == with_both - with_base - {10}


class TestMarginalFollowers:
    def test_matches_exact_on_toy_graph(self, toy_graph):
        core = core_numbers(toy_graph)
        for vertex in toy_graph.vertices():
            if core[vertex] >= 3:
                continue
            fast = marginal_followers(toy_graph, 3, vertex, core)
            exact = follower_gain(toy_graph, 3, [], vertex)
            assert fast == exact, vertex

    def test_matches_full_shell_variant(self, cl_graph):
        core = core_numbers(cl_graph)
        for vertex in list(cl_graph.vertices())[:40]:
            if core[vertex] >= 4:
                continue
            assert marginal_followers(cl_graph, 4, vertex, core) == full_shell_followers(
                cl_graph, 4, vertex, core
            )

    @pytest.mark.parametrize("k", [2, 3, 4, 5])
    def test_matches_exact_on_random_graphs(self, k):
        graph = chung_lu_graph(70, 220, skew=1.2, seed=k)
        core = core_numbers(graph)
        for vertex in list(graph.vertices())[:35]:
            if core[vertex] >= k:
                continue
            fast = marginal_followers(graph, k, vertex, core)
            exact = follower_gain(graph, k, [], vertex)
            assert fast == exact, (k, vertex)

    def test_candidate_inside_k_core_returns_empty(self, toy_graph):
        core = core_numbers(toy_graph)
        assert marginal_followers(toy_graph, 3, 8, core) == set()
        assert full_shell_followers(toy_graph, 3, 8, core) == set()

    def test_candidate_with_no_shell_neighbours_returns_empty(self, toy_graph):
        core = core_numbers(toy_graph)
        # Vertex 4 only touches vertex 1 (core 2)... which is in the shell, so
        # use a custom graph: a pendant hanging off the 3-core.
        graph = toy_graph.copy()
        graph.add_edge(99, 8)
        core = core_numbers(graph)
        assert marginal_followers(graph, 3, 99, core) == set()

    def test_visit_log_collects_region(self, toy_graph):
        core = core_numbers(toy_graph)
        log = []
        marginal_followers(toy_graph, 3, 10, core, visit_log=log)
        assert log  # the exploration touched the shell region around 10

    def test_invalid_k_raises(self, toy_graph):
        core = core_numbers(toy_graph)
        with pytest.raises(ParameterError):
            marginal_followers(toy_graph, 0, 7, core)
        with pytest.raises(ParameterError):
            full_shell_followers(toy_graph, 0, 7, core)

    def test_unknown_candidate_raises(self, toy_graph):
        core = core_numbers(toy_graph)
        with pytest.raises(VertexNotFoundError):
            marginal_followers(toy_graph, 3, 999, core)

    def test_incremental_greedy_context(self, toy_graph):
        """The fast path stays exact when previous anchors carry infinite core."""
        from repro.cores.decomposition import anchored_core_decomposition

        anchored = anchored_core_decomposition(toy_graph, anchors={10})
        fast = marginal_followers(toy_graph, 3, 17, anchored.core)
        exact = follower_gain(toy_graph, 3, [10], 17)
        assert fast == exact
