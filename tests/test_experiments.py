"""Tests for the per-figure experiment definitions (run at tiny scale)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    BenchProfile,
    clear_sweep_cache,
    experiment_ablation_maintenance,
    experiment_ablation_pruning,
    experiment_fig03_time_vs_k,
    experiment_fig04_visited_vs_k,
    experiment_fig05_time_vs_T,
    experiment_fig09_followers_vs_T,
    experiment_fig12_case_study,
    experiment_table4_anchor_selection,
    get_experiment,
    resolve_profile,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def tiny_profile() -> BenchProfile:
    """A profile small enough for the unit-test suite."""
    return BenchProfile(
        name="tiny",
        datasets=("gnutella",),
        scale=0.12,
        num_snapshots=3,
        budget=2,
        k_values_per_dataset=2,
        snapshot_grid=(2, 3),
        budget_grid=(1, 2),
        case_study_dataset="gnutella",
        case_study_k=3,
        case_study_budget=2,
    )


@pytest.fixture(autouse=True)
def _clean_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


class TestRegistry:
    def test_all_paper_figures_and_tables_are_registered(self):
        expected = {f"fig{index:02d}" for index in range(3, 13)} | {
            "table4",
            "ablation_pruning",
            "ablation_maintenance",
        }
        assert set(EXPERIMENTS) == expected

    def test_get_experiment_unknown_name(self):
        with pytest.raises(ParameterError):
            get_experiment("fig99")

    def test_resolve_profile_default_and_named(self, monkeypatch):
        monkeypatch.delenv("AVT_BENCH_PROFILE", raising=False)
        assert resolve_profile().name == "quick"
        assert resolve_profile("medium").name == "medium"
        monkeypatch.setenv("AVT_BENCH_PROFILE", "full")
        assert resolve_profile().name == "full"

    def test_resolve_profile_scale_override(self, monkeypatch):
        monkeypatch.setenv("AVT_BENCH_SCALE", "0.2")
        assert resolve_profile("quick").scale == pytest.approx(0.2)

    def test_resolve_profile_unknown(self):
        with pytest.raises(ParameterError):
            resolve_profile("gigantic")


class TestSweepExperiments:
    def test_fig03_and_fig04_share_the_same_sweep(self, tiny_profile):
        table3, report3 = experiment_fig03_time_vs_k(tiny_profile)
        table4, report4 = experiment_fig04_visited_vs_k(tiny_profile)
        assert len(table3) == len(table4) == 2 * 4  # 2 k values x 4 algorithms
        assert "Figure 3" in report3 and "Figure 4" in report4
        assert set(table3.distinct("algorithm")) == {"OLAK", "Greedy", "IncAVT", "RCM"}

    def test_fig05_reports_cumulative_series(self, tiny_profile):
        table, report = experiment_fig05_time_vs_T(tiny_profile)
        assert "Figure 5" in report
        for algorithm in table.distinct("algorithm"):
            rows = table.filter(algorithm=algorithm).rows()
            times = [row["time_s"] for row in sorted(rows, key=lambda r: r["T"])]
            assert times == sorted(times)  # cumulative => non-decreasing

    def test_fig09_followers_are_cumulative(self, tiny_profile):
        table, _ = experiment_fig09_followers_vs_T(tiny_profile)
        for algorithm in table.distinct("algorithm"):
            rows = sorted(table.filter(algorithm=algorithm).rows(), key=lambda r: r["T"])
            followers = [row["followers"] for row in rows]
            assert followers == sorted(followers)

    def test_case_study_includes_brute_force(self, tiny_profile):
        table, report = experiment_fig12_case_study(tiny_profile)
        assert "Brute-force" in table.distinct("algorithm")
        assert "Figure 12" in report

    def test_table4_has_five_rows(self, tiny_profile):
        table, report = experiment_table4_anchor_selection(tiny_profile)
        assert set(table.distinct("algorithm")) == {
            "Brute-force",
            "OLAK",
            "Greedy",
            "RCM",
            "IncAVT",
        }
        assert "Table 4" in report

    def test_ablation_pruning(self, tiny_profile):
        table, report = experiment_ablation_pruning(tiny_profile)
        assert set(table.distinct("algorithm")) == {"Greedy(pruned)", "Greedy(unpruned)"}
        pruned = table.filter(algorithm="Greedy(pruned)").rows()[0]
        unpruned = table.filter(algorithm="Greedy(unpruned)").rows()[0]
        assert pruned["followers"] == unpruned["followers"]
        assert pruned["candidates"] <= unpruned["candidates"]

    def test_ablation_maintenance(self, tiny_profile):
        table, report = experiment_ablation_maintenance(tiny_profile)
        assert set(table.distinct("algorithm")) == {
            "IncAVT(incremental)",
            "IncAVT(rebuild)",
        }
        assert "Ablation" in report
