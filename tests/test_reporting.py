"""Unit tests for the plain-text reporting helpers."""

from __future__ import annotations

import json

from repro.bench.reporting import (
    format_followers_series,
    format_series,
    format_speedup_summary,
    format_table,
    write_bench_json,
)
from repro.bench.runner import ExperimentTable


def sample_table() -> ExperimentTable:
    return ExperimentTable(
        [
            {"dataset": "gnutella", "algorithm": "OLAK", "k": 2, "time_s": 8.0, "visited": 1000, "followers": 10, "followers_series": [5, 5]},
            {"dataset": "gnutella", "algorithm": "IncAVT", "k": 2, "time_s": 0.5, "visited": 50, "followers": 9, "followers_series": [5, 4]},
            {"dataset": "gnutella", "algorithm": "OLAK", "k": 3, "time_s": 9.0, "visited": 1200, "followers": 12, "followers_series": [6, 6]},
            {"dataset": "gnutella", "algorithm": "IncAVT", "k": 3, "time_s": 0.6, "visited": 60, "followers": 11, "followers_series": [6, 5]},
            {"dataset": "eu_core", "algorithm": "OLAK", "k": 2, "time_s": 2.0, "visited": 500, "followers": 4, "followers_series": [2, 2]},
            {"dataset": "eu_core", "algorithm": "IncAVT", "k": 2, "time_s": 1.0, "visited": 100, "followers": 4, "followers_series": [2, 2]},
        ]
    )


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_explicit_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_missing_cells_render_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_one_block_per_dataset_one_line_per_algorithm(self):
        text = format_series(sample_table(), x="k", y="time_s", title="Figure X")
        assert "Figure X" in text
        assert "[gnutella]" in text and "[eu_core]" in text
        assert text.count("OLAK") == 2
        assert text.count("IncAVT") == 2
        assert "2=8.000" in text  # OLAK at k=2 on gnutella

    def test_followers_series_block(self):
        text = format_followers_series(sample_table(), title="Case study")
        assert "Case study" in text
        assert "5 5" in text and "5 4" in text

    def test_speedup_summary_reports_ratio(self):
        text = format_speedup_summary(sample_table(), baseline="OLAK", metric="time_s")
        assert "speed-up vs OLAK" in text
        assert "[gnutella]" in text
        # OLAK total 17s vs IncAVT total 1.1s on gnutella => ~15x
        assert "15." in text or "16." in text

    def test_speedup_summary_skips_missing_baseline(self):
        table = ExperimentTable([{"dataset": "x", "algorithm": "IncAVT", "time_s": 1.0}])
        text = format_speedup_summary(table, baseline="OLAK")
        assert "[x]" not in text


class TestWriteBenchJson:
    def test_record_carries_execution_block(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench_json(
            path,
            "unit",
            {"value": 1},
            backend="sharded",
            num_shards=4,
            num_workers=2,
        )
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["benchmark"] == "unit"
        assert record["value"] == 1
        assert record["execution"] == {
            "backend": "sharded",
            "num_shards": 4,
            "num_workers": 2,
        }
        assert "git_sha" in record["environment"]

    def test_single_process_defaults(self, tmp_path):
        path = tmp_path / "BENCH_default.json"
        write_bench_json(path, "unit", {})
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["execution"] == {
            "backend": "auto",
            "num_shards": 1,
            "num_workers": 1,
        }
