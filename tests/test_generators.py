"""Unit tests for the random graph and snapshot-evolution generators."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.graph.generators import (
    TemporalEdge,
    barabasi_albert_graph,
    chung_lu_graph,
    erdos_renyi_graph,
    perturb_snapshots,
    planted_community_graph,
    powerlaw_cluster_graph,
    split_stream_into_snapshots,
    temporal_edge_stream,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi_graph(50, 120, seed=1)
        assert graph.num_vertices == 50
        assert graph.num_edges == 120

    def test_deterministic_for_same_seed(self):
        first = erdos_renyi_graph(30, 60, seed=9)
        second = erdos_renyi_graph(30, 60, seed=9)
        assert first == second

    def test_different_seeds_differ(self):
        first = erdos_renyi_graph(30, 60, seed=1)
        second = erdos_renyi_graph(30, 60, seed=2)
        assert first != second

    def test_dense_request_close_to_complete(self):
        graph = erdos_renyi_graph(10, 44, seed=3)
        assert graph.num_edges == 44

    def test_rejects_too_many_edges(self):
        with pytest.raises(ParameterError):
            erdos_renyi_graph(5, 20, seed=0)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ParameterError):
            erdos_renyi_graph(-1, 0)
        with pytest.raises(ParameterError):
            erdos_renyi_graph(5, -1)


class TestBarabasiAlbert:
    def test_vertex_and_minimum_degree(self):
        graph = barabasi_albert_graph(50, 3, seed=2)
        assert graph.num_vertices == 50
        # Every vertex added after the seed clique attaches to 3 targets.
        assert all(graph.degree(v) >= 3 for v in graph.vertices())

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            barabasi_albert_graph(5, 0)
        with pytest.raises(ParameterError):
            barabasi_albert_graph(3, 3)

    def test_deterministic_for_same_seed(self):
        assert barabasi_albert_graph(40, 2, seed=4) == barabasi_albert_graph(40, 2, seed=4)


class TestChungLu:
    def test_edge_count_and_determinism(self):
        graph = chung_lu_graph(60, 180, skew=1.2, seed=7)
        assert graph.num_vertices == 60
        assert graph.num_edges == 180
        assert graph == chung_lu_graph(60, 180, skew=1.2, seed=7)

    def test_skew_concentrates_degree_on_low_ranks(self):
        graph = chung_lu_graph(200, 600, skew=1.5, seed=3)
        hubs = sum(graph.degree(v) for v in range(10))
        tail = sum(graph.degree(v) for v in range(190, 200))
        assert hubs > tail

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            chung_lu_graph(1, 0)
        with pytest.raises(ParameterError):
            chung_lu_graph(10, 100)
        with pytest.raises(ParameterError):
            chung_lu_graph(10, 5, skew=-1)


class TestPlantedCommunities:
    def test_shape(self):
        graph = planted_community_graph(4, 10, 0.6, inter_edges=12, seed=5)
        assert graph.num_vertices == 40
        assert graph.num_edges > 0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            planted_community_graph(0, 10, 0.5, 1)
        with pytest.raises(ParameterError):
            planted_community_graph(2, 10, 1.5, 1)


class TestPowerlawCluster:
    def test_shape_and_determinism(self):
        graph = powerlaw_cluster_graph(60, 3, 0.4, seed=8)
        assert graph.num_vertices == 60
        assert graph == powerlaw_cluster_graph(60, 3, 0.4, seed=8)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 3, 1.5)
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(3, 3, 0.5)


class TestPerturbSnapshots:
    def test_number_of_snapshots_and_vertex_stability(self):
        base = erdos_renyi_graph(40, 100, seed=1)
        evolving = perturb_snapshots(base, 5, (3, 6), (3, 6), seed=2)
        assert evolving.num_snapshots == 5
        snapshots = list(evolving.snapshots())
        for snapshot in snapshots:
            assert set(snapshot.vertices()) == set(base.vertices())

    def test_churn_respects_bounds(self):
        base = erdos_renyi_graph(40, 100, seed=1)
        evolving = perturb_snapshots(base, 6, (2, 4), (2, 4), seed=3)
        for delta in evolving.deltas:
            assert 2 <= len(delta.removed) <= 4
            assert len(delta.inserted) <= 4

    def test_base_graph_is_not_mutated(self):
        base = erdos_renyi_graph(30, 60, seed=4)
        before = base.copy()
        perturb_snapshots(base, 4, (2, 5), (2, 5), seed=5)
        assert base == before

    def test_parameter_validation(self):
        base = erdos_renyi_graph(10, 20, seed=1)
        with pytest.raises(ParameterError):
            perturb_snapshots(base, 0)
        with pytest.raises(ParameterError):
            perturb_snapshots(base, 3, (5, 2), (1, 2))


class TestTemporalStream:
    def test_stream_is_sorted_and_sized(self):
        events = temporal_edge_stream(50, 300, duration=100.0, seed=6)
        assert len(events) == 300
        timestamps = [event.timestamp for event in events]
        assert timestamps == sorted(timestamps)
        assert all(0 <= t < 100.0 for t in timestamps)

    def test_no_self_interactions(self):
        events = temporal_edge_stream(20, 200, duration=10.0, seed=7)
        assert all(event.u != event.v for event in events)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            temporal_edge_stream(1, 10, 5.0)
        with pytest.raises(ParameterError):
            temporal_edge_stream(10, -1, 5.0)
        with pytest.raises(ParameterError):
            temporal_edge_stream(10, 10, 0.0)

    def test_split_into_snapshots_accumulates(self):
        events = temporal_edge_stream(30, 400, duration=100.0, seed=8)
        sequence = split_stream_into_snapshots(events, num_snapshots=4)
        assert sequence.num_snapshots == 4
        sizes = [snapshot.num_edges for snapshot in sequence]
        assert sizes == sorted(sizes)  # without expiry, snapshots only grow

    def test_split_with_inactivity_window_expires_edges(self):
        events = [
            TemporalEdge(1, 2, 0.0),
            TemporalEdge(3, 4, 95.0),
        ]
        sequence = split_stream_into_snapshots(
            events, num_snapshots=4, inactivity_window=30.0, vertices=[1, 2, 3, 4]
        )
        assert sequence[0].has_edge(1, 2)
        assert not sequence[3].has_edge(1, 2)
        assert sequence[3].has_edge(3, 4)

    def test_split_empty_stream_requires_vertices(self):
        with pytest.raises(ParameterError):
            split_stream_into_snapshots([], num_snapshots=3)
        sequence = split_stream_into_snapshots([], num_snapshots=3, vertices=[1, 2])
        assert sequence.num_snapshots == 3
        assert sequence[0].num_edges == 0
