"""Unit and property tests for the :mod:`repro.shard` subsystem.

Covers the partitioner invariants (total coverage, cut-edge symmetry,
degree balance, community cut reduction), the async/lock-step exchange and
serial vs process-pool coordinator equivalences (the pickling / spawn / shm
contracts), the shared-memory round-trip and unlink lifecycle, and the
sharded backend's configuration surface (environment defaults,
``with_config``, engine checkpoints).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import BACKEND_SHARDED, get_backend, resolve_backend
from repro.backends.sharded_backend import ShardedBackend, ShardedCoreIndexKernel
from repro.cores.decomposition import compact_peel
from repro.engine import StreamingAVTEngine
from repro.errors import ParameterError
from repro.graph.compact import CompactGraph
from repro.graph.generators import planted_community_graph
from repro.graph.static import Graph
from repro.shard import shm
from repro.shard.coordinator import ShardCoordinator, shutdown_shard_pools
from repro.shard.partition import (
    CommunityPartitioner,
    DegreeBalancedPartitioner,
    HashPartitioner,
    PARTITIONERS,
    get_partitioner,
    partition_compact_graph,
)

SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def sample_graph() -> Graph:
    return Graph(
        edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6), (0, 6)],
        vertices=list(range(7)) + ["isolated"],
    )


@st.composite
def graphs(draw) -> Graph:
    num_vertices = draw(st.integers(min_value=1, max_value=14))
    vertices = list(range(num_vertices))
    possible = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1 :]]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=3 * num_vertices, unique=True)
        if possible
        else st.just([])
    )
    return Graph(edges=edges, vertices=vertices)


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_every_vertex_in_exactly_one_shard(self, partitioner, num_shards):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, num_shards, partitioner)
        seen = []
        for shard in plan.shards:
            seen.extend(shard.owned)
            # Owner map and ownership agree.
            for gvid in shard.owned:
                assert plan.shard_of[gvid] == shard.shard_id
        assert sorted(seen) == list(range(cgraph.num_vertices))

    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    def test_cut_edge_tables_symmetric(self, partitioner, num_shards):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, num_shards, partitioner)
        for shard in plan.shards:
            for other_id, pairs in shard.cut_edges.items():
                mirrored = sorted(
                    (remote, owned) for owned, remote in pairs
                )
                assert plan.shards[other_id].cut_edges.get(shard.shard_id, []) == mirrored

    def test_edges_conserved_across_shards(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 3)
        local_entries = sum(
            sum(1 for entry in shard.encoded if entry >= 0) for shard in plan.shards
        )
        cut_entries = sum(shard.num_cut_edges for shard in plan.shards)
        # Every edge contributes two CSR entries overall, split between
        # local entries (both endpoints in one shard) and cut entries.
        assert local_entries + cut_entries == 2 * cgraph.num_edges

    def test_hash_partitioner_uses_id_modulo(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        assignment = HashPartitioner().assign(cgraph, 3)
        assert assignment == [vid % 3 for vid in range(cgraph.num_vertices)]

    def test_degree_balanced_within_tolerance(self):
        # A skewed star-heavy graph: greedy LPT must still balance loads to
        # within the heaviest single vertex.
        edges = [(0, i) for i in range(1, 30)] + [(1, i) for i in range(40, 50)]
        graph = Graph(edges=edges, vertices=list(range(60)))
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        num_shards = 4
        assignment = DegreeBalancedPartitioner().assign(cgraph, num_shards)
        loads = [0] * num_shards
        for vid, shard in enumerate(assignment):
            loads[shard] += cgraph.degrees[vid] + 1
        assert max(loads) - min(loads) <= max(cgraph.degrees) + 1

    def test_boundary_lists_owned_vertices_with_remote_neighbours(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        for shard in plan.shards:
            expected = sorted(
                {owned for pairs in shard.cut_edges.values() for owned, _ in pairs}
            )
            assert shard.boundary == expected

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ParameterError):
            get_partitioner("metis")
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        with pytest.raises(ParameterError):
            partition_compact_graph(cgraph, 2, "metis")
        with pytest.raises(ParameterError):
            partition_compact_graph(cgraph, 0)


class TestCoordinatorSerial:
    def test_decompose_matches_compact_peel(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 3)
        coordinator = ShardCoordinator(plan)
        core, order = coordinator.decompose(anchor_ids=[2])
        expected_core, expected_order = compact_peel(cgraph, [2])
        assert core == expected_core
        assert order == expected_order
        assert coordinator.rounds > 0
        assert coordinator.messages > 0  # 3 shards must exchange something

    def test_unknown_executor_rejected(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        with pytest.raises(ParameterError):
            ShardCoordinator(plan, executor="threads")

    def test_empty_graph(self):
        cgraph = CompactGraph.from_graph(Graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        coordinator = ShardCoordinator(plan)
        assert coordinator.decompose() == ([], [])
        assert coordinator.k_core_ids(1) == set()


class TestShardLocalCaching:
    """The shard-local result caches never change a result, only skip work."""

    def test_identical_refresh_hits_every_cache(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        coordinator = ShardCoordinator(partition_compact_graph(cgraph, 3))
        first = coordinator.decompose(anchor_ids=[2])
        stats_after_first = coordinator.stats()
        assert stats_after_first["shard_cache_hits"] == 0
        assert stats_after_first["shard_cache_misses"] == 3
        second = coordinator.decompose(anchor_ids=[2])
        assert second == first
        stats_after_second = coordinator.stats()
        # Same local anchors everywhere: every round-1 peel and every
        # fragment build is served from the shard-side caches.
        assert stats_after_second["shard_cache_hits"] == 3
        assert stats_after_second["fragment_cache_hits"] == 3

    def test_anchor_commit_misses_only_the_owning_shard(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 3)
        coordinator = ShardCoordinator(plan)
        coordinator.decompose()
        anchor = 4
        core, order = coordinator.decompose(anchor_ids=[anchor])
        expected_core, expected_order = compact_peel(cgraph, [anchor])
        assert core == expected_core
        assert order == expected_order
        stats = coordinator.stats()
        # Only the shard owning the new anchor re-peels; the other two reuse
        # their cached round-1 peel.
        assert stats["shard_cache_hits"] == 2
        assert stats["shard_cache_misses"] == 4  # 3 initial + the owner

    def test_cached_decompose_matches_fresh_coordinator(self):
        """A cached refresh equals a cold coordinator's, anchors varying."""
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        warm = ShardCoordinator(partition_compact_graph(cgraph, 3))
        committed = []
        for anchor in (5, 2, 0):
            committed.append(anchor)
            warm_result = warm.decompose(anchor_ids=committed)
            cold = ShardCoordinator(partition_compact_graph(cgraph, 3))
            assert warm_result == cold.decompose(anchor_ids=committed)

    @SETTINGS
    @given(graph=graphs(), num_shards=st.integers(min_value=1, max_value=4))
    def test_repeated_and_growing_anchor_sets_property(self, graph, num_shards):
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        coordinator = ShardCoordinator(partition_compact_graph(cgraph, num_shards))
        anchors = []
        for anchor in range(0, cgraph.num_vertices, 3):
            anchors.append(anchor)
            core, order = coordinator.decompose(anchors)
            expected_core, expected_order = compact_peel(cgraph, anchors)
            assert core == expected_core
            assert order == expected_order
        stats = coordinator.stats()
        assert stats["shard_cache_hits"] + stats["shard_cache_misses"] >= num_shards


@pytest.fixture(scope="module")
def process_pools():
    """Spawned worker pools shared by the process-executor tests."""
    yield
    shutdown_shard_pools()


class TestCoordinatorProcess:
    """Serial vs process-pool coordinators are observationally identical.

    These tests exercise the ``spawn`` start method end to end: shard states
    and every op payload must pickle, and per-shard mutable state must stay
    pinned to its dedicated worker across rounds.
    """

    @SETTINGS
    @given(graph=graphs(), num_shards=st.integers(min_value=1, max_value=4))
    def test_decompose_serial_vs_process(self, process_pools, graph, num_shards):
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        serial = ShardCoordinator(partition_compact_graph(cgraph, num_shards))
        pooled = ShardCoordinator(
            partition_compact_graph(cgraph, num_shards), executor="process"
        )
        try:
            anchors = [0] if cgraph.num_vertices > 2 else []
            assert serial.decompose(anchors) == pooled.decompose(anchors)
            for k in (1, 2, 3):
                assert serial.k_core_ids(k) == pooled.k_core_ids(k)
        finally:
            pooled.close()

    @SETTINGS
    @given(graph=graphs(), k=st.integers(min_value=1, max_value=4))
    def test_index_kernel_serial_vs_process(self, process_pools, graph, k):
        serial = ShardedCoreIndexKernel(
            graph, num_shards=3, partitioner="hash", executor="serial", max_workers=None
        )
        pooled = ShardedCoreIndexKernel(
            graph, num_shards=3, partitioner="hash", executor="process", max_workers=None
        )
        try:
            serial.refresh(set())
            pooled.refresh(set())
            assert dict(serial.core_numbers()) == dict(pooled.core_numbers())
            assert serial.plain_k_core(k) == pooled.plain_k_core(k)
            assert serial.candidate_anchors(k, True) == pooled.candidate_anchors(k, True)
            for candidate in sorted(serial.non_core_vertices(k), key=repr):
                assert serial.marginal_followers(
                    k, candidate, False
                ) == pooled.marginal_followers(k, candidate, False)
                assert serial.marginal_followers(
                    k, candidate, True
                ) == pooled.marginal_followers(k, candidate, True)
        finally:
            pooled.close()

    def test_worker_state_released_on_close(self, process_pools):
        from repro.shard import coordinator as co

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process")
        key = pooled._exec.key
        pooled.decompose()
        pooled.close()
        # The drop ran in the workers: loading a fresh coordinator still
        # works and a probe for the old key finds nothing.
        probe = co._get_pool(0).submit(co._worker_drop, key).result()
        assert probe == 0

    def test_max_workers_fewer_than_shards(self, process_pools):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 4)
        pooled = ShardCoordinator(plan, executor="process", max_workers=2)
        try:
            assert pooled.num_workers == 2
            expected_core, expected_order = compact_peel(cgraph)
            assert pooled.decompose() == (expected_core, list(expected_order))
        finally:
            pooled.close()


class TestCrossProcessTracing:
    """Spans recorded inside spawn workers merge into the coordinator trace."""

    def test_worker_spans_adopted_into_coordinator_trace(self, process_pools):
        import os

        from repro.obs import tracer

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process")
        previous = tracer.set_enabled(True)
        tracer.drain()
        try:
            with tracer.span("test.root") as root:
                pooled.decompose()
            spans = tracer.drain()
        finally:
            tracer.set_enabled(previous)
            pooled.close()

        worker_spans = [entry for entry in spans if entry["pid"] != os.getpid()]
        assert worker_spans, "workers recorded no spans"
        # Per-shard ops carry their shard id; fan-out tasks their task name.
        assert {entry["name"] for entry in worker_spans} <= {"shard.op", "shard.task"}
        op_spans = [entry for entry in worker_spans if entry["name"] == "shard.op"]
        assert {entry["attrs"]["shard"] for entry in op_spans} == {0, 1}
        # pid-prefixed ids never collide with the coordinator's.
        coordinator_ids = {
            entry["span_id"] for entry in spans if entry["pid"] == os.getpid()
        }
        assert not coordinator_ids & {entry["span_id"] for entry in worker_spans}

        root_dict = next(entry for entry in spans if entry["name"] == "test.root")
        by_id = {entry["span_id"]: entry for entry in spans}
        for entry in worker_spans:
            # Shared trace id and a parent chain that reaches the test root.
            assert entry["trace_id"] == root_dict["trace_id"]
            cursor = entry
            while cursor["parent_id"] is not None:
                cursor = by_id[cursor["parent_id"]]
            assert cursor["span_id"] == root_dict["span_id"]

    def test_async_adopt_multiwave_reparents_under_exchange(self, process_pools):
        """Multi-wave async exchanges adopt worker roots under the right spot.

        A ring+chords graph over 3 hash shards keeps boundary traffic flowing
        for several waves, so worker ops from different waves interleave.
        Every adopted worker-root ``shard.op`` must land under the exchange
        for its own op (via the ``shard.wave`` spans the coordinator opens
        while resolving), carry its shard tag, and the reconstructed
        straggler report must reconcile exactly with the coordinator's
        ``exchange_waves`` / ``ops_dispatched`` counters.
        """
        import os

        from repro.obs import build_span_trees, straggler_report, tracer

        n = 36
        edges = [(i, (i + 1) % n) for i in range(n)] + [
            (i, (i + 5) % n) for i in range(n)
        ]
        cgraph = CompactGraph.from_graph(
            Graph(edges=edges, vertices=range(n)), ordered=True
        )
        plan = partition_compact_graph(cgraph, 3)
        pooled = ShardCoordinator(plan, executor="process")
        previous = tracer.set_enabled(True)
        tracer.drain()
        try:
            with tracer.span("test.root"):
                pooled.decompose(anchor_ids=[0, 7])
                pooled.k_core_ids(3, [1])
            spans = tracer.drain()
            waves_expected = pooled.exchange_waves
            ops_expected = pooled.ops_dispatched
        finally:
            tracer.set_enabled(previous)
            pooled.close()

        (root,) = build_span_trees(spans)
        exchanges = [
            node for node in root.walk() if node.name == "shard.exchange"
        ]
        assert exchanges, "no async exchange recorded"
        assert any(node.attrs["waves"] >= 2 for node in exchanges), (
            "workload failed to produce a multi-wave exchange"
        )

        coordinator_pid = os.getpid()
        adopted_ops = 0
        for exchange in exchanges:
            for node in exchange.walk():
                if node.name != "shard.op" or node.span["pid"] == coordinator_pid:
                    continue
                adopted_ops += 1
                # Worker roots are re-parented onto the span open at resolve
                # time: a wave of this exchange (resubmission or first
                # completion) — never a sibling exchange's wave.
                assert node.parent is not None
                assert node.parent.name in {"shard.wave", "shard.exchange"}
                assert node.attrs["op"] == exchange.attrs["op"]
                assert node.attrs["shard"] in {0, 1, 2}
                assert node.trace_id == root.trace_id
        assert adopted_ops > 0, "no worker ops adopted under the exchanges"

        report = straggler_report(spans)
        assert report["total_waves"] == waves_expected
        assert report["total_ops_dispatched"] == ops_expected
        multiwave = [entry for entry in report["exchanges"] if entry["waves"] >= 2]
        assert multiwave
        # Multi-wave means at least one shard ran beyond its initial op.
        assert any(entry["resubmissions"] >= 1 for entry in multiwave)

    def test_untraced_process_run_returns_no_spans(self, process_pools):
        from repro.obs import tracer

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process")
        previous = tracer.set_enabled(False)
        tracer.drain()
        try:
            pooled.decompose()
            assert tracer.drain() == []
        finally:
            tracer.set_enabled(previous)
            pooled.close()


class TestShardedBackendConfig:
    def test_registered_and_not_picked_by_auto(self):
        assert get_backend("sharded").name == BACKEND_SHARDED
        assert resolve_backend("auto", 10**6) != BACKEND_SHARDED

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_COUNT", "6")
        monkeypatch.setenv("REPRO_SHARD_PARTITIONER", "degree_balanced")
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "serial")
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_EXCHANGE", "lockstep")
        monkeypatch.setenv("REPRO_SHARD_SHM", "0")
        backend = ShardedBackend()
        assert backend.config() == {
            "num_shards": 6,
            "partitioner": "degree_balanced",
            "executor": "serial",
            "max_workers": 2,
            "exchange": "lockstep",
            "shared_memory": False,
        }

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_COUNT", "many")
        with pytest.raises(ParameterError):
            ShardedBackend()

    def test_with_config_returns_new_instance(self):
        base = get_backend("sharded")
        derived = base.with_config({"num_shards": 9, "executor": "serial"})
        assert derived is not base
        assert derived.num_shards == 9
        assert base.config() == get_backend("sharded").config()

    def test_with_config_rejects_unknown_keys(self):
        with pytest.raises(ParameterError):
            get_backend("sharded").with_config({"replication": 2})

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ParameterError):
            ShardedBackend(num_shards=0)
        with pytest.raises(ParameterError):
            ShardedBackend(executor="threads")
        with pytest.raises(ParameterError):
            ShardedBackend(partitioner="metis")
        with pytest.raises(ParameterError):
            ShardedBackend(max_workers=0)
        with pytest.raises(ParameterError):
            ShardedBackend(exchange="gossip")
        with pytest.raises(ParameterError):
            ShardCoordinator(
                partition_compact_graph(
                    CompactGraph.from_graph(sample_graph(), ordered=True), 2
                ),
                exchange="gossip",
            )

    def test_korder_shares_one_partition(self):
        backend = ShardedBackend(num_shards=3, executor="serial")
        graph = sample_graph()
        decomposition, deg_plus = backend.korder(graph)
        reference, reference_deg = get_backend("dict").korder(graph)
        assert dict(decomposition.core) == dict(reference.core)
        assert decomposition.order == reference.order
        assert deg_plus == reference_deg


class TestEngineCheckpointConfig:
    def test_checkpoint_persists_shard_configuration(self, tmp_path):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        backend = get_backend("sharded").with_config({"num_shards": 5})
        engine = StreamingAVTEngine(graph, backend=backend, batch_size=None)
        engine.query(k=2, budget=1)
        path = tmp_path / "sharded.ckpt"
        engine.checkpoint(path)
        restored = StreamingAVTEngine.restore(path)
        assert restored.backend == BACKEND_SHARDED
        assert restored._backend.num_shards == 5
        assert restored._backend.partitioner == backend.partitioner
        assert restored.core_numbers() == engine.core_numbers()

    def test_checkpoint_persists_exchange_and_shm_configuration(self, tmp_path):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        backend = get_backend("sharded").with_config(
            {"exchange": "lockstep", "shared_memory": False}
        )
        engine = StreamingAVTEngine(graph, backend=backend, batch_size=None)
        engine.query(k=2, budget=1)
        path = tmp_path / "sharded-exchange.ckpt"
        engine.checkpoint(path)
        restored = StreamingAVTEngine.restore(path)
        assert restored._backend.exchange == "lockstep"
        assert restored._backend.shared_memory is False
        assert restored.core_numbers() == engine.core_numbers()

    def test_restore_backend_override_wins(self, tmp_path):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        engine = StreamingAVTEngine(
            graph, backend=get_backend("sharded").with_config({"num_shards": 2}),
            batch_size=None,
        )
        path = tmp_path / "sharded2.ckpt"
        engine.checkpoint(path)
        restored = StreamingAVTEngine.restore(path, backend="dict")
        assert restored.backend == "dict"


class TestCheckpointUnavailableBackendFallback:
    """Satellite regression: restoring a checkpoint whose persisted backend
    is unavailable in this process falls back to "auto" with a warning."""

    def test_numpy_checkpoint_restored_without_numpy(self, tmp_path, monkeypatch):
        from repro.engine.checkpoint import write_state

        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        engine = StreamingAVTEngine(graph, backend="dict", batch_size=None)
        engine.query(k=2, budget=1)
        state = engine.to_state()
        state["backend"] = "numpy"  # as if written on a numpy-enabled host
        state["backend_config"] = {}
        path = tmp_path / "numpy.ckpt"
        write_state(state, path)

        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        with pytest.warns(RuntimeWarning, match="numpy"):
            restored = StreamingAVTEngine.restore(path)
        assert restored.core_numbers() == engine.core_numbers()
        # The fallback rewired the policy to auto; a fresh checkpoint of the
        # restored engine must not resurrect the unavailable name.
        assert restored.to_state()["backend"] == "auto"

    def test_unregistered_backend_name_also_falls_back(self, tmp_path):
        from repro.engine.checkpoint import write_state

        graph = Graph(edges=[(0, 1), (1, 2)])
        engine = StreamingAVTEngine(graph, backend="dict", batch_size=None)
        state = engine.to_state()
        state["backend"] = "fpga"
        path = tmp_path / "fpga.ckpt"
        write_state(state, path)
        with pytest.warns(RuntimeWarning, match="fpga"):
            restored = StreamingAVTEngine.restore(path)
        assert restored.core_numbers() == engine.core_numbers()

    def test_available_backend_restores_without_warning(self, tmp_path):
        import warnings

        graph = Graph(edges=[(0, 1), (1, 2)])
        engine = StreamingAVTEngine(graph, backend="compact", batch_size=None)
        path = tmp_path / "compact.ckpt"
        engine.checkpoint(path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            restored = StreamingAVTEngine.restore(path)
        assert restored.backend == "compact"


class TestCommunityPartitioner:
    def test_cut_reduction_on_planted_communities(self):
        """Label propagation halves (at least) the hash partitioner's cut."""
        graph = planted_community_graph(
            num_communities=4,
            community_size=30,
            intra_edge_probability=0.3,
            inter_edges=30,
            seed=7,
        )
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        community = partition_compact_graph(cgraph, 4, "community")
        hashed = partition_compact_graph(cgraph, 4, "hash")
        assert community.cut_edge_count * 2 <= hashed.cut_edge_count
        assert community.cut_edge_ratio <= 0.5 * hashed.cut_edge_ratio
        # LPT packing under the block cap keeps shard sizes balanced.
        assert community.balance <= 2.0

    def test_community_results_bit_identical(self):
        graph = planted_community_graph(
            num_communities=3,
            community_size=12,
            intra_edge_probability=0.4,
            inter_edges=10,
            seed=3,
        )
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        coordinator = ShardCoordinator(partition_compact_graph(cgraph, 3, "community"))
        anchors = [0, 13]
        assert coordinator.decompose(anchors) == compact_peel(cgraph, anchors)

    def test_assignment_deterministic(self):
        graph = planted_community_graph(
            num_communities=3,
            community_size=10,
            intra_edge_probability=0.5,
            inter_edges=8,
            seed=11,
        )
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        partitioner = CommunityPartitioner()
        assert partitioner.assign(cgraph, 3) == partitioner.assign(cgraph, 3)

    def test_plan_quality_metadata(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 3)
        assert plan.cut_edge_count == sum(s.num_cut_edges for s in plan.shards) // 2
        assert plan.cut_edge_ratio == plan.cut_edge_count / cgraph.num_edges
        assert plan.balance >= 1.0
        stats = ShardCoordinator(plan).stats()
        assert stats["cut_edges"] == plan.cut_edge_count
        assert stats["cut_edge_ratio"] == plan.cut_edge_ratio
        assert stats["balance"] == plan.balance

    def test_empty_graph_metadata(self):
        cgraph = CompactGraph.from_graph(Graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2, "community")
        assert plan.cut_edge_count == 0
        assert plan.cut_edge_ratio == 0.0
        assert plan.balance == 1.0


class TestAsyncExchange:
    """The futures-based exchange is bit-identical to lock-step and compact."""

    @SETTINGS
    @given(graph=graphs(), num_shards=st.integers(min_value=1, max_value=4))
    def test_partitioners_and_exchanges_match_compact(self, graph, num_shards):
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        anchors = [0] if cgraph.num_vertices > 2 else []
        expected = compact_peel(cgraph, anchors)
        for partitioner in sorted(PARTITIONERS):
            for exchange in ("async", "lockstep"):
                coordinator = ShardCoordinator(
                    partition_compact_graph(cgraph, num_shards, partitioner),
                    exchange=exchange,
                )
                assert coordinator.decompose(anchors) == expected
                assert coordinator.k_core_ids(2, anchors) == {
                    vid for vid, c in enumerate(expected[0]) if c >= 2
                }

    @SETTINGS
    @given(graph=graphs(), partitioner=st.sampled_from(sorted(PARTITIONERS)))
    def test_process_async_matches_compact(self, process_pools, graph, partitioner):
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        anchors = [0] if cgraph.num_vertices > 2 else []
        expected = compact_peel(cgraph, anchors)
        pooled = ShardCoordinator(
            partition_compact_graph(cgraph, 3, partitioner), executor="process"
        )
        try:
            assert pooled.decompose(anchors) == expected
        finally:
            pooled.close()

    def test_async_exchange_counters(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        asynchronous = ShardCoordinator(partition_compact_graph(cgraph, 3))
        asynchronous.decompose(anchor_ids=[2])
        stats = asynchronous.stats()
        assert stats["exchange_waves"] > 0
        assert stats["ops_dispatched"] >= 3
        lockstep = ShardCoordinator(
            partition_compact_graph(cgraph, 3), exchange="lockstep"
        )
        lockstep.decompose(anchor_ids=[2])
        assert lockstep.stats()["exchange_waves"] == 0


class TestSharedMemoryStates:
    """to_shared/from_shared round-trips and the unlink lifecycle."""

    def test_round_trip_preserves_every_field(self):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 3, "degree_balanced")
        key = "test-round-trip"
        try:
            for state in plan.shards:
                handle = state.to_shared(key)
                attached, block = type(state).from_shared(handle)
                try:
                    assert attached.shard_id == state.shard_id
                    assert attached.num_shards == state.num_shards
                    assert list(attached.owned) == list(state.owned)
                    assert attached.local_of == state.local_of
                    assert list(attached.indptr) == list(state.indptr)
                    assert list(attached.encoded) == list(state.encoded)
                    assert list(attached.degrees) == list(state.degrees)
                    assert list(attached.ghost_gvid) == list(state.ghost_gvid)
                    assert list(attached.ghost_owner) == list(state.ghost_owner)
                    assert list(attached.ghost_deg) == list(state.ghost_deg)
                    assert attached.ghost_of == state.ghost_of
                    assert len(attached.ghost_rev) == len(state.ghost_rev)
                    assert [list(row) for row in attached.ghost_rev] == [
                        list(row) for row in state.ghost_rev
                    ]
                    assert attached.boundary == state.boundary
                    assert attached.num_cut_edges == state.num_cut_edges
                finally:
                    del attached
                    block.close()
        finally:
            shm.unlink_blocks(key)

    def test_handles_pickle_small(self):
        import pickle

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        key = "test-pickle"
        try:
            handle = plan.shards[0].to_shared(key)
            payload = pickle.dumps(handle)
            assert len(payload) < 500  # a name and a few ints, not the graph
            clone = pickle.loads(payload)
            assert clone.block_name == handle.block_name
            assert clone.lengths == handle.lengths
        finally:
            shm.unlink_blocks(key)

    def test_unlink_on_coordinator_close(self, process_pools):
        from multiprocessing import shared_memory as mp_shm

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process")
        key = pooled._exec.key
        names = [
            block.name
            for blocks_key, blocks in shm._BLOCKS.items()
            if blocks_key == key
            for block in blocks
        ]
        assert len(names) == 2  # one block per shard
        pooled.decompose()
        pooled.close()
        assert not any(name in shm.live_block_names() for name in names)
        for name in names:
            with pytest.raises(FileNotFoundError):
                mp_shm.SharedMemory(name=name)

    def test_shared_memory_disabled_still_works(self, process_pools):
        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process", shared_memory=False)
        try:
            assert pooled.shared_memory is False
            expected_core, expected_order = compact_peel(cgraph)
            assert pooled.decompose() == (expected_core, list(expected_order))
        finally:
            pooled.close()

    def test_worker_crash_still_unlinks_and_pools_respawn(self, process_pools):
        import os

        from repro.shard import coordinator as co

        cgraph = CompactGraph.from_graph(sample_graph(), ordered=True)
        plan = partition_compact_graph(cgraph, 2)
        pooled = ShardCoordinator(plan, executor="process")
        key = pooled._exec.key
        pooled.decompose()
        # Kill one dedicated worker mid-life; the pool breaks.
        victim_slot = pooled._exec.slots[0]
        crash = co._get_pool(victim_slot).submit(os._exit, 1)
        with pytest.raises(Exception):
            crash.result(timeout=30)
        # Close must still drop the sibling worker's state and unlink every
        # shared block, and the broken pool must respawn for the next user.
        from repro.obs.flight import default_recorder

        seq_before = max(
            (dump["seq"] for dump in default_recorder().dumps), default=0
        )
        pooled.close()
        assert shm.live_block_names() == []
        # Retiring the broken pool dumps the flight recorder for post-mortems.
        # The dump deque is bounded, so identify new dumps by sequence number.
        pool_dumps = [
            dump
            for dump in default_recorder().dumps
            if dump["seq"] > seq_before and dump["reason"] == "broken-process-pool"
        ]
        assert len(pool_dumps) == 1
        assert pool_dumps[0]["context"]["slot"] == victim_slot
        fresh = ShardCoordinator(
            partition_compact_graph(cgraph, 2), executor="process"
        )
        try:
            expected_core, expected_order = compact_peel(cgraph)
            assert fresh.decompose() == (expected_core, list(expected_order))
        finally:
            fresh.close()


class TestAnchoredSharding:
    @SETTINGS
    @given(graph=graphs(), num_shards=st.integers(min_value=2, max_value=5))
    def test_anchored_decompose_property(self, graph, num_shards):
        """Anchors (owned and ghost alike) survive every shard layout."""
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        anchors = [vid for vid in range(cgraph.num_vertices) if vid % 3 == 0][:3]
        plan = partition_compact_graph(cgraph, num_shards, "degree_balanced")
        coordinator = ShardCoordinator(plan)
        core, order = coordinator.decompose(anchors)
        expected_core, expected_order = compact_peel(cgraph, anchors)
        assert core == expected_core
        assert order == expected_order
        for anchor in anchors:
            assert core[anchor] == math.inf
