"""Unit tests for edge deltas, snapshot sequences and evolving graphs."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotError
from repro.graph.dynamic import EdgeDelta, EvolvingGraph, SnapshotSequence
from repro.graph.static import Graph


def build_snapshots():
    first = Graph(edges=[(1, 2), (2, 3), (3, 4)])
    second = first.copy()
    second.add_edge(4, 1)
    second.remove_edge(2, 3)
    third = second.copy()
    third.add_edge(2, 3)
    return [first, second, third]


class TestEdgeDelta:
    def test_from_iterables_deduplicates_and_canonicalises(self):
        delta = EdgeDelta.from_iterables(inserted=[(2, 1), (1, 2)], removed=[(4, 3)])
        assert delta.inserted == ((1, 2),)
        assert delta.removed == ((3, 4),)
        assert delta.num_changes == 2

    def test_between_computes_symmetric_difference(self):
        first, second, _ = build_snapshots()
        delta = EdgeDelta.between(first, second)
        assert set(delta.inserted) == {(1, 4)}
        assert set(delta.removed) == {(2, 3)}

    def test_apply_transforms_before_into_after(self):
        first, second, _ = build_snapshots()
        delta = EdgeDelta.between(first, second)
        replay = first.copy()
        delta.apply(replay)
        assert replay == second

    def test_apply_ignores_redundant_changes(self):
        graph = Graph(edges=[(1, 2)])
        delta = EdgeDelta.from_iterables(inserted=[(1, 2)], removed=[(5, 6)])
        delta.apply(graph)
        assert graph.num_edges == 1

    def test_reversed_undoes_the_delta(self):
        first, second, _ = build_snapshots()
        delta = EdgeDelta.between(first, second)
        replay = first.copy()
        delta.apply(replay)
        delta.reversed().apply(replay)
        assert replay == first

    def test_is_empty(self):
        assert EdgeDelta().is_empty()
        assert not EdgeDelta.from_iterables(inserted=[(1, 2)]).is_empty()


class TestEdgeDeltaMerge:
    def test_merge_of_nothing_is_empty(self):
        assert EdgeDelta.merge().is_empty()

    def test_merge_unions_disjoint_deltas(self):
        merged = EdgeDelta.merge(
            EdgeDelta.from_iterables(inserted=[(1, 2)]),
            EdgeDelta.from_iterables(removed=[(3, 4)]),
        )
        assert merged.inserted == ((1, 2),)
        assert merged.removed == ((3, 4),)

    def test_last_operation_wins_across_deltas(self):
        insert_then_remove = EdgeDelta.merge(
            EdgeDelta.from_iterables(inserted=[(1, 2)]),
            EdgeDelta.from_iterables(removed=[(1, 2)]),
        )
        assert insert_then_remove.inserted == ()
        assert insert_then_remove.removed == ((1, 2),)
        remove_then_insert = EdgeDelta.merge(
            EdgeDelta.from_iterables(removed=[(1, 2)]),
            EdgeDelta.from_iterables(inserted=[(2, 1)]),  # canonicalised to (1, 2)
        )
        assert remove_then_insert.inserted == ((1, 2),)
        assert remove_then_insert.removed == ()

    def test_merge_equals_sequential_application(self):
        snapshots = build_snapshots()
        deltas = [
            EdgeDelta.between(snapshots[0], snapshots[1]),
            EdgeDelta.between(snapshots[1], snapshots[2]),
        ]
        merged_graph = snapshots[0].copy()
        EdgeDelta.merge(*deltas).apply(merged_graph)
        assert merged_graph == snapshots[2]

    def test_merge_with_base_cancels_round_trips(self):
        base = Graph(edges=[(1, 2)])
        deltas = [
            EdgeDelta.from_iterables(inserted=[(3, 4)]),  # absent edge: insert...
            EdgeDelta.from_iterables(removed=[(3, 4)]),  # ...then remove -> nothing
            EdgeDelta.from_iterables(removed=[(1, 2)]),  # present edge: remove...
            EdgeDelta.from_iterables(inserted=[(1, 2)]),  # ...then re-insert -> nothing
        ]
        assert EdgeDelta.merge(*deltas, base=base).is_empty()
        # without the base the net operations survive as harmless no-ops
        blind = EdgeDelta.merge(*deltas)
        assert blind.num_changes == 2
        replay = base.copy()
        blind.apply(replay)
        assert replay == base

    def test_merge_with_base_drops_plain_noops(self):
        base = Graph(edges=[(1, 2)])
        merged = EdgeDelta.merge(
            EdgeDelta.from_iterables(inserted=[(1, 2)], removed=[(8, 9)]),
            base=base,
        )
        assert merged.is_empty()


class TestSnapshotSequence:
    def test_requires_at_least_one_snapshot(self):
        with pytest.raises(SnapshotError):
            SnapshotSequence([])

    def test_len_iteration_and_indexing(self):
        sequence = SnapshotSequence(build_snapshots())
        assert len(sequence) == 3
        assert sequence.num_snapshots == 3
        assert sequence[0].num_edges == 3
        assert [snapshot.num_edges for snapshot in sequence] == [3, 3, 4]

    def test_indexing_out_of_range_raises(self):
        sequence = SnapshotSequence(build_snapshots())
        with pytest.raises(SnapshotError):
            _ = sequence[7]

    def test_vertex_universe_is_union(self):
        snapshots = build_snapshots()
        snapshots[2].add_vertex(99)
        sequence = SnapshotSequence(snapshots)
        assert 99 in sequence.vertex_universe()

    def test_deltas_reconstruct_snapshots(self):
        sequence = SnapshotSequence(build_snapshots())
        deltas = sequence.deltas()
        assert len(deltas) == 2
        replay = sequence[0].copy()
        for index, delta in enumerate(deltas, start=1):
            delta.apply(replay)
            assert replay == sequence[index]

    def test_truncated(self):
        sequence = SnapshotSequence(build_snapshots())
        truncated = sequence.truncated(2)
        assert truncated.num_snapshots == 2
        with pytest.raises(SnapshotError):
            sequence.truncated(0)
        with pytest.raises(SnapshotError):
            sequence.truncated(9)

    def test_total_edge_changes(self):
        sequence = SnapshotSequence(build_snapshots())
        assert sequence.total_edge_changes() == 3  # (+1, -1) then (+1)


class TestEvolvingGraph:
    def test_round_trip_with_snapshot_sequence(self):
        sequence = SnapshotSequence(build_snapshots())
        evolving = sequence.to_evolving_graph()
        materialised = evolving.to_snapshot_sequence()
        assert materialised.num_snapshots == sequence.num_snapshots
        for original, replayed in zip(sequence, materialised):
            assert original == replayed

    def test_snapshots_are_independent_copies(self):
        evolving = SnapshotSequence(build_snapshots()).to_evolving_graph()
        snapshots = list(evolving.snapshots())
        snapshots[0].add_edge(50, 51)
        assert not evolving.base.has_edge(50, 51)

    def test_snapshot_at(self):
        sequence = SnapshotSequence(build_snapshots())
        evolving = sequence.to_evolving_graph()
        assert evolving.snapshot_at(2) == sequence[2]
        with pytest.raises(SnapshotError):
            evolving.snapshot_at(3)
        with pytest.raises(SnapshotError):
            evolving.snapshot_at(-1)

    def test_truncated_keeps_prefix(self):
        evolving = SnapshotSequence(build_snapshots()).to_evolving_graph()
        truncated = evolving.truncated(2)
        assert truncated.num_snapshots == 2
        with pytest.raises(SnapshotError):
            evolving.truncated(10)

    def test_total_edge_changes(self):
        evolving = SnapshotSequence(build_snapshots()).to_evolving_graph()
        assert evolving.total_edge_changes() == 3
