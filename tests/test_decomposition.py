"""Unit tests for core decomposition, k-cores, shells and anchored decomposition."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.cores.decomposition import (
    ANCHOR_CORE,
    anchored_core_decomposition,
    core_decomposition,
    core_numbers,
    degeneracy,
    k_core,
    k_shell,
)
from repro.errors import ParameterError
from repro.graph.static import Graph

from tests.conftest import random_graph, to_networkx


class TestCoreNumbers:
    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_isolated_vertices_have_core_zero(self):
        graph = Graph(vertices=[1, 2, 3])
        assert core_numbers(graph) == {1: 0, 2: 0, 3: 0}

    def test_single_edge(self):
        graph = Graph(edges=[(1, 2)])
        assert core_numbers(graph) == {1: 1, 2: 1}

    def test_triangle_with_pendant(self, triangle_graph):
        core = core_numbers(triangle_graph)
        assert core == {1: 2, 2: 2, 3: 2, 4: 1}

    def test_clique_core_equals_size_minus_one(self):
        size = 6
        edges = [(u, v) for u in range(size) for v in range(u + 1, size)]
        core = core_numbers(Graph(edges=edges))
        assert all(value == size - 1 for value in core.values())

    def test_matches_networkx_on_toy_graph(self, toy_graph):
        assert core_numbers(toy_graph) == nx.core_number(to_networkx(toy_graph))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        graph = random_graph(seed)
        assert core_numbers(graph) == nx.core_number(to_networkx(graph))

    def test_matches_networkx_on_ba_and_cl_graphs(self, ba_graph, cl_graph):
        for graph in (ba_graph, cl_graph):
            assert core_numbers(graph) == nx.core_number(to_networkx(graph))


class TestDecompositionResult:
    def test_order_is_a_permutation_of_vertices(self, cl_graph):
        decomposition = core_decomposition(cl_graph)
        assert sorted(decomposition.order, key=repr) == sorted(cl_graph.vertices(), key=repr)

    def test_order_is_sorted_by_core_number(self, cl_graph):
        decomposition = core_decomposition(cl_graph)
        values = [decomposition.core[vertex] for vertex in decomposition.order]
        assert values == sorted(values)

    def test_order_is_deterministic(self, cl_graph):
        first = core_decomposition(cl_graph)
        second = core_decomposition(cl_graph)
        assert first.order == second.order

    def test_shells_partition_vertices(self, cl_graph):
        decomposition = core_decomposition(cl_graph)
        shell_union = [vertex for shell in decomposition.shells().values() for vertex in shell]
        assert sorted(shell_union, key=repr) == sorted(cl_graph.vertices(), key=repr)

    def test_k_core_and_shell_helpers(self, toy_graph):
        assert k_core(toy_graph, 3) == {8, 9, 12, 13, 16}
        assert k_core(toy_graph, 0) == set(toy_graph.vertices())
        assert k_shell(toy_graph, 1) == {4}
        decomposition = core_decomposition(toy_graph)
        assert decomposition.k_core_vertices(3) == {8, 9, 12, 13, 16}
        assert decomposition.shell_vertices(3) == {8, 9, 12, 13, 16}

    def test_k_core_matches_networkx(self, cl_graph):
        for k in range(0, degeneracy(cl_graph) + 1):
            expected = set(nx.k_core(to_networkx(cl_graph), k).nodes())
            assert k_core(cl_graph, k) == expected

    def test_k_core_rejects_negative_k(self, toy_graph):
        with pytest.raises(ParameterError):
            k_core(toy_graph, -1)

    def test_degeneracy(self, toy_graph):
        assert degeneracy(toy_graph) == 3
        assert degeneracy(Graph()) == 0

    def test_every_kcore_member_has_k_neighbours_inside(self, cl_graph):
        for k in (2, 3, 4):
            members = k_core(cl_graph, k)
            for vertex in members:
                inside = sum(1 for n in cl_graph.neighbors(vertex) if n in members)
                assert inside >= k


class TestAnchoredDecomposition:
    def test_anchors_receive_infinite_core(self, toy_graph):
        decomposition = anchored_core_decomposition(toy_graph, anchors={7, 10})
        assert decomposition.core[7] == ANCHOR_CORE
        assert decomposition.core[10] == ANCHOR_CORE
        assert math.isinf(ANCHOR_CORE)

    def test_anchored_k_core_matches_example_3(self, toy_graph):
        decomposition = anchored_core_decomposition(toy_graph, anchors={7, 10})
        anchored_core = decomposition.k_core_vertices(3)
        assert anchored_core == {8, 9, 12, 13, 16, 7, 10, 2, 3, 5, 6, 11}
        assert len(anchored_core) == 12

    def test_anchoring_never_lowers_core_numbers(self, cl_graph):
        plain = core_numbers(cl_graph)
        anchors = list(cl_graph.vertices())[:3]
        anchored = anchored_core_decomposition(cl_graph, anchors=anchors)
        for vertex, value in plain.items():
            assert anchored.core[vertex] >= value

    def test_empty_anchor_set_equals_plain_decomposition(self, cl_graph):
        plain = core_decomposition(cl_graph)
        anchored = anchored_core_decomposition(cl_graph, anchors=())
        assert plain.core == anchored.core

    def test_unknown_anchor_raises(self, toy_graph):
        with pytest.raises(ParameterError):
            anchored_core_decomposition(toy_graph, anchors={999})

    def test_fully_anchored_graph(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        decomposition = anchored_core_decomposition(graph, anchors={1, 2, 3})
        assert all(value == ANCHOR_CORE for value in decomposition.core.values())
        assert set(decomposition.order) == {1, 2, 3}
