"""Unit tests for the dataset stand-ins and the Figure-1 toy example."""

from __future__ import annotations

import pytest

from repro.anchored.followers import compute_followers
from repro.cores.decomposition import core_numbers
from repro.errors import DatasetError
from repro.graph.datasets import (
    DATASET_NAMES,
    dataset_spec,
    dataset_summary,
    load_dataset,
    load_snapshot_sequence,
    toy_example_evolving_graph,
    toy_example_graph,
)


class TestSpecs:
    def test_all_six_paper_datasets_have_specs(self):
        assert set(DATASET_NAMES) == {
            "email_enron",
            "gnutella",
            "deezer",
            "eu_core",
            "mathoverflow",
            "college_msg",
        }
        for name in DATASET_NAMES:
            spec = dataset_spec(name)
            assert spec.name == name
            assert spec.kind in {"static", "temporal"}
            assert spec.default_k in spec.k_values
            assert len(spec.k_values) >= 3

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            dataset_spec("facebook")

    def test_static_and_temporal_split_matches_paper(self):
        static = {name for name in DATASET_NAMES if dataset_spec(name).kind == "static"}
        assert static == {"email_enron", "gnutella", "deezer"}


class TestLoading:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_load_every_dataset_small(self, name):
        evolving = load_dataset(name, num_snapshots=3, scale=0.15, seed=3)
        assert evolving.num_snapshots == 3
        assert evolving.base.num_vertices >= 40
        assert evolving.base.num_edges > 0

    def test_loading_is_deterministic(self):
        first = load_dataset("gnutella", num_snapshots=3, scale=0.2, seed=5)
        second = load_dataset("gnutella", num_snapshots=3, scale=0.2, seed=5)
        assert first.base == second.base
        assert first.deltas == second.deltas

    def test_different_seeds_differ(self):
        first = load_dataset("gnutella", num_snapshots=3, scale=0.2, seed=5)
        second = load_dataset("gnutella", num_snapshots=3, scale=0.2, seed=6)
        assert first.base != second.base

    def test_static_datasets_keep_vertex_set(self):
        evolving = load_dataset("deezer", num_snapshots=4, scale=0.2, seed=1)
        vertex_sets = [set(snapshot.vertices()) for snapshot in evolving.snapshots()]
        assert all(vertices == vertex_sets[0] for vertices in vertex_sets)

    def test_static_datasets_have_smooth_churn(self):
        evolving = load_dataset("email_enron", num_snapshots=4, scale=0.25, seed=1)
        for delta in evolving.deltas:
            assert delta.num_changes <= 0.02 * evolving.base.num_edges

    def test_load_snapshot_sequence_matches_evolving(self):
        sequence = load_snapshot_sequence("gnutella", num_snapshots=3, scale=0.2, seed=5)
        evolving = load_dataset("gnutella", num_snapshots=3, scale=0.2, seed=5)
        assert sequence.num_snapshots == evolving.num_snapshots
        assert sequence[0] == evolving.base

    def test_edge_churn_override(self):
        evolving = load_dataset(
            "gnutella", num_snapshots=3, scale=0.2, seed=5, edge_churn=(1, 2)
        )
        for delta in evolving.deltas:
            assert len(delta.removed) <= 2

    def test_dataset_summary_fields(self):
        summary = dataset_summary("college_msg", num_snapshots=3, scale=0.3)
        assert summary["name"] == "college_msg"
        assert summary["kind"] == "temporal"
        assert summary["num_snapshots"] == 3
        assert summary["num_vertices"] > 0
        assert summary["average_degree"] > 0


class TestToyExample:
    def test_seventeen_users(self, toy_graph):
        assert toy_graph.num_vertices == 17
        assert set(toy_graph.vertices()) == set(range(1, 18))

    def test_three_core_matches_example_2(self, toy_graph):
        core = core_numbers(toy_graph)
        three_core = {vertex for vertex, value in core.items() if value >= 3}
        assert three_core == {8, 9, 12, 13, 16}

    def test_anchoring_7_and_10_matches_example_3(self, toy_graph):
        followers = compute_followers(toy_graph, 3, {7, 10})
        assert followers == {2, 3, 5, 6, 11}

    def test_anchoring_15_matches_example_6(self, toy_graph):
        assert compute_followers(toy_graph, 3, {15}) == {14}

    def test_anchor_candidates_have_low_degree(self, toy_graph):
        assert toy_graph.degree(7) < 3
        assert toy_graph.degree(10) < 3

    def test_evolving_toy_changes_follower_structure(self, toy_evolving):
        snapshots = list(toy_evolving.snapshots())
        assert len(snapshots) == 2
        before = compute_followers(snapshots[0], 3, {7, 10})
        after = compute_followers(snapshots[1], 3, {7, 10})
        assert before == {2, 3, 5, 6, 11}
        assert after != before
        assert 11 not in after
