"""Tests for the exception hierarchy: everything the library raises is catchable as ReproError."""

from __future__ import annotations

import pytest

from repro.errors import (
    DatasetError,
    EdgeNotFoundError,
    GraphError,
    InvariantViolationError,
    ParameterError,
    ReproError,
    SelfLoopError,
    SnapshotError,
    VertexNotFoundError,
)
from repro.graph.static import Graph


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_cls",
        [
            GraphError,
            VertexNotFoundError,
            EdgeNotFoundError,
            SelfLoopError,
            SnapshotError,
            ParameterError,
            InvariantViolationError,
            DatasetError,
        ],
    )
    def test_every_library_error_derives_from_repro_error(self, exception_cls):
        assert issubclass(exception_cls, ReproError)

    def test_graph_specific_errors_derive_from_graph_error(self):
        for exception_cls in (VertexNotFoundError, EdgeNotFoundError, SelfLoopError):
            assert issubclass(exception_cls, GraphError)

    def test_errors_carry_the_offending_objects(self):
        vertex_error = VertexNotFoundError("alice")
        assert vertex_error.vertex == "alice"
        edge_error = EdgeNotFoundError(1, 2)
        assert edge_error.edge == (1, 2)
        loop_error = SelfLoopError(7)
        assert loop_error.vertex == 7

    def test_library_failures_are_catchable_as_repro_error(self):
        graph = Graph()
        with pytest.raises(ReproError):
            graph.neighbors("missing")
        with pytest.raises(ReproError):
            graph.remove_edge(1, 2)
        with pytest.raises(ReproError):
            graph.add_edge(3, 3)
