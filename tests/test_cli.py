"""Tests for the avt-bench command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListing:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig03" in output and "table4" in output and "summary" in output

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "Available experiments" in capsys.readouterr().out


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("email_enron", "gnutella", "deezer", "eu_core", "mathoverflow", "college_msg"):
            assert name in output


class TestSummary:
    def test_summary_small_scale(self, capsys):
        code = main(
            [
                "summary",
                "--dataset",
                "gnutella",
                "--scale",
                "0.12",
                "--snapshots",
                "3",
                "--budget",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "OLAK" in output and "IncAVT" in output
        assert "speed-up" in output


class TestBackends:
    def test_backends_table(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in ("dict", "compact", "numpy", "numba", "sharded"):
            assert name in output
        assert "auto_priority" in output
        assert "reason" in output  # why an unavailable tier is being skipped
        assert "num_shards=" in output  # the sharded worker/shard configuration
        assert "exchange=" in output  # async vs lockstep boundary exchange
        # The partition-quality section compares every registered partitioner
        # on a clustered sample graph.
        assert "partition quality" in output
        assert "cut_ratio" in output
        for name in ("hash", "degree_balanced", "community"):
            assert name in output

    def test_backends_table_names_the_disable_switch(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert main(["backends"]) == 0
        assert "disabled via REPRO_DISABLE_NUMBA" in capsys.readouterr().out

    def test_backends_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "backends" in capsys.readouterr().out


class TestCalibrate:
    def test_calibrate_writes_a_loadable_table(self, capsys, tmp_path):
        from repro.backends import CalibrationTable

        out = tmp_path / "calibration.json"
        assert (
            main(
                [
                    "calibrate",
                    "--max-vertices",
                    "160",
                    "--repetitions",
                    "1",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "winner" in output
        assert "calibration table written" in output
        table = CalibrationTable.load(out)
        assert table.band_names() == ("small", "medium", "large")
        assert table.winner_for(100) is not None

    def test_calibrate_reports_skipped_backends(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
        assert main(["calibrate", "--max-vertices", "64", "--repetitions", "1"]) == 0
        output = capsys.readouterr().out
        assert "skipping backend 'numpy': disabled via REPRO_DISABLE_NUMPY" in output
        assert "skipping backend 'numba': disabled via REPRO_DISABLE_NUMBA" in output

    def test_calibrate_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "calibrate" in capsys.readouterr().out


class TestServeSim:
    def test_serve_sim_with_sharded_backend(self, capsys):
        code = main(
            [
                "serve-sim",
                "--dataset",
                "gnutella",
                "--scale",
                "0.12",
                "--snapshots",
                "3",
                "--budget",
                "2",
                "--backend",
                "sharded",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "backend=sharded" in output

    def test_serve_sim_with_community_partitioner(self, capsys):
        code = main(
            [
                "serve-sim",
                "--dataset",
                "gnutella",
                "--scale",
                "0.12",
                "--snapshots",
                "3",
                "--budget",
                "2",
                "--backend",
                "sharded",
                "--shards",
                "2",
                "--partitioner",
                "community",
            ]
        )
        assert code == 0
        assert "backend=sharded" in capsys.readouterr().out

    def test_shards_flag_requires_sharded_backend(self, capsys):
        assert main(["serve-sim", "--dataset", "gnutella", "--shards", "2"]) == 2
        assert "--shards requires" in capsys.readouterr().err

    def test_partitioner_flag_requires_sharded_backend(self, capsys):
        assert (
            main(["serve-sim", "--dataset", "gnutella", "--partitioner", "community"])
            == 2
        )
        assert "--partitioner requires" in capsys.readouterr().err

    def test_unknown_partitioner_rejected(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--dataset",
                    "gnutella",
                    "--backend",
                    "sharded",
                    "--partitioner",
                    "metis",
                ]
            )
            == 2
        )
        assert "unknown partitioner" in capsys.readouterr().err

    def test_unknown_backend_flag_rejected(self, capsys):
        assert main(["serve-sim", "--dataset", "gnutella", "--backend", "warp"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_serve_sim_replays_and_hits_cache(self, capsys, tmp_path):
        checkpoint = tmp_path / "engine.ckpt"
        code = main(
            [
                "serve-sim",
                "--dataset",
                "gnutella",
                "--scale",
                "0.15",
                "--snapshots",
                "4",
                "--budget",
                "3",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "serve-sim on gnutella" in output
        assert "hit rate" in output
        assert "restore verified: ok" in output
        assert checkpoint.exists()
        # at least one cache hit is part of the serve-sim contract
        hits = int(output.split("hits=")[1].split()[0])
        assert hits >= 1

    def test_serve_sim_listed(self, capsys):
        assert main(["--list"]) == 0
        assert "serve-sim" in capsys.readouterr().out


class TestExperiments:
    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table4_with_csv_export(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("AVT_BENCH_SCALE", "0.12")
        csv_path = tmp_path / "table4.csv"
        assert main(["table4", "--csv", str(csv_path)]) == 0
        output = capsys.readouterr().out
        assert "Table 4" in output
        assert csv_path.exists()
        assert "algorithm" in csv_path.read_text(encoding="utf-8")
