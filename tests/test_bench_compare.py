"""Tests for the benchmark floor enforcement helper (`repro.bench.compare`)."""

from __future__ import annotations

import json

from repro.bench.compare import check_files, describe_floors, floor_failures, main


def _record(value: float, floor: float, enforced: bool) -> dict:
    return {
        "benchmark": "demo",
        "floors": {
            "demo_speedup": {"value": value, "floor": floor, "enforced": enforced},
        },
    }


class TestFloorFailures:
    def test_enforced_floor_met_passes(self):
        assert floor_failures(_record(2.5, 2.0, True)) == []

    def test_enforced_floor_violated_fails(self):
        failures = floor_failures(_record(1.4, 2.0, True))
        assert len(failures) == 1
        assert "demo_speedup" in failures[0]
        assert "regressed" in failures[0]

    def test_unenforced_floor_never_fails(self):
        assert floor_failures(_record(0.1, 2.0, False)) == []

    def test_record_without_floors_passes(self):
        assert floor_failures({"benchmark": "legacy"}) == []

    def test_malformed_spec_reported(self):
        failures = floor_failures({"floors": {"bad": {"value": 1.0}}})
        assert failures and "malformed" in failures[0]

    def test_multiple_floors_checked_independently(self):
        record = {
            "floors": {
                "ok": {"value": 3.0, "floor": 2.0, "enforced": True},
                "bad": {"value": 1.0, "floor": 2.0, "enforced": True},
            }
        }
        failures = floor_failures(record)
        assert len(failures) == 1
        assert "bad" in failures[0]


class TestDescribeFloors:
    def test_mentions_enforcement_status(self):
        lines = describe_floors(_record(2.5, 2.0, True))
        assert lines == ["demo_speedup: value=2.5 floor=2.0 (enforced)"]
        lines = describe_floors(_record(2.5, 2.0, False))
        assert "recorded only" in lines[0]


class TestCheckFilesAndCli:
    def test_check_files_mixed(self, tmp_path):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(_record(3.0, 2.0, True)), encoding="utf-8")
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(_record(1.0, 2.0, True)), encoding="utf-8")
        legacy = tmp_path / "BENCH_legacy.json"
        legacy.write_text(json.dumps({"benchmark": "x"}), encoding="utf-8")
        results = check_files([str(good), str(bad), str(legacy)])
        assert results[str(good)] == []
        assert results[str(bad)] != []
        assert results[str(legacy)] == []

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(_record(3.0, 2.0, True)), encoding="utf-8")
        assert main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out

        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(_record(1.0, 2.0, True)), encoding="utf-8")
        assert main([str(good), str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

        missing = tmp_path / "nope.json"
        assert main([str(missing)]) == 1
        assert main([]) == 2

    def test_emitted_benchmark_records_pass(self):
        """Locally emitted BENCH_*.json artifacts must satisfy their floors.

        ``benchmarks/results/`` is a gitignored artifact directory, so this
        skips on fresh checkouts and guards any machine where the benchmarks
        have been run (including the CI bench-smoke job's workspace).
        """
        import pytest
        from pathlib import Path

        results_dir = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        paths = sorted(str(p) for p in results_dir.glob("BENCH_*.json"))
        if not paths:
            pytest.skip("no benchmark artifacts emitted in this checkout")
        for path, failures in check_files(paths).items():
            assert failures == [], (path, failures)
