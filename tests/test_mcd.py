"""Unit tests for max core degree and pure core degree (Definition 6)."""

from __future__ import annotations

import pytest

from repro.cores.decomposition import core_numbers
from repro.cores.mcd import max_core_degree, max_core_degrees, pure_core_degree
from repro.errors import VertexNotFoundError
from repro.graph.static import Graph


class TestMaxCoreDegree:
    def test_matches_definition_on_toy_graph(self, toy_graph):
        core = core_numbers(toy_graph)
        for vertex in toy_graph.vertices():
            expected = sum(
                1 for neighbour in toy_graph.neighbors(vertex) if core[neighbour] >= core[vertex]
            )
            assert max_core_degree(toy_graph, core, vertex) == expected

    def test_mcd_is_at_least_core_number(self, cl_graph):
        core = core_numbers(cl_graph)
        for vertex in cl_graph.vertices():
            assert max_core_degree(cl_graph, core, vertex) >= core[vertex]

    def test_example_10_style_count(self):
        # Star centre with three strong neighbours and one weak neighbour.
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (2, 3), (1, 3)])
        core = core_numbers(graph)
        assert core[4] == 1
        assert max_core_degree(graph, core, 4) == 1
        assert max_core_degree(graph, core, 0) == 3

    def test_bulk_helper_matches_single_calls(self, toy_graph):
        core = core_numbers(toy_graph)
        bulk = max_core_degrees(toy_graph, core)
        for vertex in toy_graph.vertices():
            assert bulk[vertex] == max_core_degree(toy_graph, core, vertex)

    def test_bulk_helper_with_subset(self, toy_graph):
        core = core_numbers(toy_graph)
        subset = max_core_degrees(toy_graph, core, vertices=[7, 10])
        assert set(subset) == {7, 10}

    def test_missing_vertex_raises(self, toy_graph):
        core = core_numbers(toy_graph)
        with pytest.raises(VertexNotFoundError):
            max_core_degree(toy_graph, core, 999)
        with pytest.raises(VertexNotFoundError):
            pure_core_degree(toy_graph, core, 999)


class TestPureCoreDegree:
    def test_pcd_is_at_most_mcd(self, cl_graph):
        core = core_numbers(cl_graph)
        for vertex in cl_graph.vertices():
            assert pure_core_degree(cl_graph, core, vertex) <= max_core_degree(
                cl_graph, core, vertex
            )

    def test_pcd_counts_only_promotable_support(self):
        # Path a-b-c: every vertex has core 1.  b's neighbours both have
        # mcd == 1 == core, so they cannot help b rise: pcd(b) == 0.
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        core = core_numbers(graph)
        assert pure_core_degree(graph, core, "b") == 0
