"""Unit tests for the cross-algorithm comparison metrics."""

from __future__ import annotations

import pytest

from repro.anchored.result import AnchoredKCoreResult, SolverStats
from repro.avt.metrics import (
    anchor_stability,
    follower_quality,
    followers_series,
    speedup,
    summarise,
    visited_ratio,
)
from repro.avt.problem import AVTResult, SnapshotResult
from repro.errors import ParameterError


def make_result(algorithm: str, followers_per_t, runtime: float, visited: int, anchors=((1,),)):
    result = AVTResult(algorithm=algorithm, k=3, budget=2, problem_name="toy")
    anchor_cycle = list(anchors)
    for timestamp, count in enumerate(followers_per_t):
        selection = AnchoredKCoreResult(
            algorithm=algorithm,
            k=3,
            budget=2,
            anchors=tuple(anchor_cycle[timestamp % len(anchor_cycle)]),
            followers=frozenset(range(count)),
            anchored_core_size=5 + count,
            stats=SolverStats(
                candidates_evaluated=2,
                visited_vertices=visited // max(len(followers_per_t), 1),
                runtime_seconds=runtime / max(len(followers_per_t), 1),
            ),
        )
        result.append(
            SnapshotResult(timestamp=timestamp, result=selection, num_vertices=17, num_edges=28)
        )
    return result


class TestSpeedupAndVisited:
    def test_speedup(self):
        slow = make_result("OLAK", [2, 2], runtime=10.0, visited=1000)
        fast = make_result("IncAVT", [2, 2], runtime=1.0, visited=100)
        assert speedup([slow, fast], baseline="OLAK", target="IncAVT") == pytest.approx(10.0)

    def test_visited_ratio(self):
        slow = make_result("OLAK", [2], runtime=1.0, visited=1000)
        fast = make_result("IncAVT", [2], runtime=1.0, visited=10)
        assert visited_ratio([slow, fast], baseline="OLAK", target="IncAVT") == pytest.approx(100.0)

    def test_missing_algorithm_raises(self):
        only = make_result("OLAK", [1], 1.0, 10)
        with pytest.raises(ParameterError):
            speedup([only], baseline="OLAK", target="IncAVT")

    def test_duplicate_algorithm_raises(self):
        first = make_result("OLAK", [1], 1.0, 10)
        second = make_result("OLAK", [1], 1.0, 10)
        with pytest.raises(ParameterError):
            speedup([first, second], baseline="OLAK", target="OLAK")

    def test_zero_time_target_gives_infinity(self):
        slow = make_result("OLAK", [1], runtime=1.0, visited=10)
        instant = make_result("IncAVT", [1], runtime=0.0, visited=10)
        assert speedup([slow, instant], baseline="OLAK", target="IncAVT") == float("inf")


class TestQualityMetrics:
    def test_follower_quality(self):
        reference = make_result("Greedy", [5, 5], 1.0, 10)
        other = make_result("RCM", [4, 4], 1.0, 10)
        quality = follower_quality([reference, other], reference="Greedy")
        assert quality["Greedy"] == pytest.approx(1.0)
        assert quality["RCM"] == pytest.approx(0.8)

    def test_follower_quality_zero_reference(self):
        reference = make_result("Greedy", [0], 1.0, 10)
        other = make_result("RCM", [0], 1.0, 10)
        quality = follower_quality([reference, other], reference="Greedy")
        assert quality["RCM"] == 1.0

    def test_followers_series(self):
        result = make_result("Greedy", [1, 2, 3], 1.0, 10)
        assert followers_series([result]) == {"Greedy": [1, 2, 3]}

    def test_anchor_stability_constant_anchors(self):
        result = make_result("Greedy", [1, 1, 1], 1.0, 10, anchors=((1, 2),))
        assert anchor_stability(result) == pytest.approx(1.0)

    def test_anchor_stability_changing_anchors(self):
        result = make_result("Greedy", [1, 1], 1.0, 10, anchors=((1, 2), (3, 4)))
        assert anchor_stability(result) == pytest.approx(0.0)

    def test_anchor_stability_single_snapshot(self):
        result = make_result("Greedy", [1], 1.0, 10)
        assert anchor_stability(result) == 1.0


class TestSummaries:
    def test_summarise_rows(self):
        results = [make_result("Greedy", [2, 3], 1.0, 10), make_result("OLAK", [2, 3], 5.0, 100)]
        rows = summarise(results)
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "Greedy"
        assert rows[0]["followers"] == 5
        assert rows[1]["visited"] == 100
        assert set(rows[0]) >= {"algorithm", "k", "l", "T", "followers", "time_s"}
