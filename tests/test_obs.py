"""Tests for :mod:`repro.obs` — tracing, the metrics registry, exporters.

Covers the no-op disabled path, span nesting/parentage, sinks and the
bounded buffer, cross-process adoption, the unified snapshot schema across
the three stats surfaces, the Prometheus/JSONL exporters, and the
acceptance-criterion reconciliation: a traced ``serve-sim`` run's span
counts and durations must agree with the engine's counters.
"""

from __future__ import annotations

import json
import logging
import math
import os
import pickle

import pytest

from repro.anchored.result import SolverStats
from repro.cli import main
from repro.engine.stats import EngineStats
from repro.obs import (
    JsonLinesSpanSink,
    MetricsRegistry,
    Tracer,
    global_registry,
    read_spans_jsonl,
    to_prometheus,
    tracer,
    write_metrics,
    write_spans_jsonl,
)


@pytest.fixture
def traced():
    """Enable tracing for one test, with clean buffers before and after."""
    previous = tracer.set_enabled(True)
    tracer.drain()
    yield
    tracer.drain()
    tracer.set_enabled(previous)


@pytest.fixture
def untraced():
    previous = tracer.set_enabled(False)
    yield
    tracer.set_enabled(previous)


class TestDisabledPath:
    def test_span_returns_shared_noop_singleton(self, untraced):
        first = tracer.span("engine.query", k=3, budget=5)
        second = tracer.span("something.else")
        assert first is second  # no allocation on the disabled path

    def test_noop_span_records_nothing(self, untraced):
        tracer.drain()
        with tracer.span("engine.query", k=3) as span:
            span.set(outcome="hit")
        assert tracer.drain() == []

    def test_set_enabled_returns_previous_state(self):
        previous = tracer.set_enabled(True)
        try:
            assert tracer.is_enabled()
            assert tracer.set_enabled(previous) is True
        finally:
            tracer.set_enabled(previous)
        assert tracer.is_enabled() is previous


class TestSpans:
    def test_nesting_parentage_and_attrs(self, traced):
        with tracer.span("outer", stage="test") as outer:
            with tracer.span("inner", k=3) as inner:
                inner.set(visited=7)
        spans = tracer.drain()
        assert [entry["name"] for entry in spans] == ["inner", "outer"]
        inner_dict, outer_dict = spans
        assert outer_dict["parent_id"] is None
        assert outer_dict["trace_id"] == outer_dict["span_id"]
        assert inner_dict["parent_id"] == outer_dict["span_id"]
        assert inner_dict["trace_id"] == outer_dict["trace_id"]
        assert inner_dict["attrs"] == {"k": 3, "visited": 7}
        assert outer_dict["attrs"] == {"stage": "test"}
        assert inner_dict["pid"] == os.getpid()
        assert inner_dict["duration"] >= 0.0
        assert outer_dict["duration"] >= inner_dict["duration"]

    def test_span_ids_are_pid_prefixed_and_unique(self, traced):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        spans = tracer.drain()
        ids = {entry["span_id"] for entry in spans}
        assert len(ids) == 2
        prefix = f"{os.getpid():x}-"
        assert all(span_id.startswith(prefix) for span_id in ids)

    def test_exception_tags_error_attribute(self, traced):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("expected")
        (span,) = tracer.drain()
        assert span["attrs"]["error"] == "ValueError"

    def test_current_span_tracks_innermost(self, traced):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_sinks_receive_finished_spans(self, traced):
        collected = []
        tracer.add_sink(collected.append)
        try:
            with tracer.span("observed", k=1):
                pass
        finally:
            tracer.remove_sink(collected.append)
        with tracer.span("unobserved"):
            pass
        assert [entry["name"] for entry in collected] == ["observed"]

    def test_buffer_cap_drops_and_counts(self, traced):
        dropped = global_registry().counter("obs.spans_dropped")
        before = dropped.value
        private = Tracer(max_buffered=2)
        for index in range(3):
            with private.span("overflow", index=index):
                pass
        assert len(private.drain()) == 2
        assert dropped.value == before + 1

    def test_buffer_overflow_warns_once_until_drained(self, traced, caplog):
        private = Tracer(max_buffered=1)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for index in range(4):
                with private.span("overflow", index=index):
                    pass
        warnings = [
            record
            for record in caplog.records
            if "span buffer full" in record.getMessage()
        ]
        assert len(warnings) == 1
        assert "max_buffered=1" in warnings[0].getMessage()

        # drain() re-arms the warning for the next overflow
        private.drain()
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            for index in range(3):
                with private.span("overflow-again", index=index):
                    pass
        assert sum(
            "span buffer full" in record.getMessage() for record in caplog.records
        ) == 1

    def test_adopt_reparents_worker_roots(self, traced):
        worker = [
            {
                "name": "shard.op",
                "span_id": "dead-1",
                "parent_id": "dead-0",  # parent not in the drained set
                "trace_id": "dead-1",
                "pid": 99999,
                "start": 1.0,
                "duration": 0.5,
                "attrs": {"op": "peel"},
            },
            {
                "name": "shard.op.child",
                "span_id": "dead-2",
                "parent_id": "dead-1",  # intra-worker parentage is preserved
                "trace_id": "dead-1",
                "pid": 99999,
                "start": 1.1,
                "duration": 0.2,
                "attrs": {},
            },
        ]
        with tracer.span("coordinator.round") as round_span:
            merged = tracer.adopt(worker, shard=3)
        spans = {entry["span_id"]: entry for entry in tracer.drain()}
        assert len(merged) == 2
        root = spans["dead-1"]
        child = spans["dead-2"]
        assert root["parent_id"] == round_span.span_id
        assert child["parent_id"] == "dead-1"
        assert root["trace_id"] == round_span.trace_id
        assert child["trace_id"] == round_span.trace_id
        assert root["attrs"]["shard"] == 3 and child["attrs"]["shard"] == 3
        assert root["attrs"]["op"] == "peel"


class TestMetricsRegistry:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.queries")
        counter.inc()
        counter.inc(2)
        assert registry.counter("engine.queries") is counter
        assert counter.value == 3

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        plain = registry.counter("shard.messages")
        labelled = registry.counter("shard.messages", shard="1")
        assert plain is not labelled
        labelled.inc(5)
        assert plain.value == 0
        assert registry.get("shard.messages", shard="1").value == 5

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries")
        with pytest.raises(TypeError):
            registry.gauge("engine.queries")
        with pytest.raises(TypeError):
            registry.histogram("engine.queries")

    def test_snapshot_schema(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc(4)
        registry.gauge("engine.cache_size").set(17)
        registry.histogram("engine.latency.hit").observe(0.002)
        snapshot = registry.snapshot()
        assert {entry["name"] for entry in snapshot} == {
            "engine.queries",
            "engine.cache_size",
            "engine.latency.hit",
        }
        for entry in snapshot:
            assert set(entry) == {"name", "type", "value", "labels"}
        by_name = {entry["name"]: entry for entry in snapshot}
        assert by_name["engine.queries"]["type"] == "counter"
        assert by_name["engine.cache_size"]["type"] == "gauge"
        assert by_name["engine.latency.hit"]["type"] == "histogram"
        assert by_name["engine.latency.hit"]["value"]["count"] == 1
        json.dumps(snapshot)  # schema is JSON-serialisable as-is

    def test_snapshot_prefix_filter(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries")
        registry.counter("solver.iterations")
        names = {entry["name"] for entry in registry.snapshot(prefix="engine.")}
        assert names == {"engine.queries"}

    def test_restore_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc(7)
        registry.gauge("engine.cache_size").set(3)
        histogram = registry.histogram("solver.commit_seconds", track_values=True)
        for value in (0.001, 0.004, 0.1):
            histogram.observe(value)
        restored = MetricsRegistry()
        restored.restore(json.loads(registry.to_json()))
        assert restored.snapshot() == registry.snapshot()

    def test_histogram_quantiles_exact_with_samples(self):
        histogram = MetricsRegistry().histogram("latency", track_values=True)
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        assert histogram.quantile(0.5) == pytest.approx(0.050)
        assert histogram.quantile(0.95) == pytest.approx(0.095)
        assert histogram.quantile(1.0) == pytest.approx(0.100)
        percentiles = histogram.percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_histogram_bucket_quantile_bounds(self):
        histogram = MetricsRegistry().histogram("latency")
        for _ in range(300):
            histogram.observe(0.01)
        # Without samples the quantile is the containing bucket's upper bound:
        # at most one growth factor above the true value, never below it.
        estimate = histogram.quantile(0.99)
        assert 0.01 <= estimate <= 0.01 * math.sqrt(2.0) * 1.0001
        assert histogram.count == 300
        assert histogram.mean == pytest.approx(0.01)
        assert histogram.min == histogram.max == 0.01


class TestExporters:
    def test_jsonl_sink_round_trip(self, traced, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = JsonLinesSpanSink(path)
        tracer.add_sink(sink)
        try:
            with tracer.span("outer"):
                with tracer.span("inner", k=2):
                    pass
        finally:
            tracer.remove_sink(sink)
            sink.close()
        assert sink.spans_written == 2
        loaded = read_spans_jsonl(path)
        assert [entry["name"] for entry in loaded] == ["inner", "outer"]
        assert loaded == tracer.drain()

    def test_write_spans_jsonl(self, traced, tmp_path):
        with tracer.span("solo"):
            pass
        spans = tracer.drain()
        path = tmp_path / "drained.jsonl"
        assert write_spans_jsonl(spans, path) == 1
        assert read_spans_jsonl(path) == spans

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc(3)
        registry.gauge("engine.cache_size").set(9)
        registry.counter("shard.messages", shard="2").inc(4)
        histogram = registry.histogram("engine.latency.hit")
        histogram.observe(0.001)
        histogram.observe(0.002)
        text = to_prometheus(registry)
        assert "# TYPE repro_engine_queries counter" in text
        assert "repro_engine_queries 3" in text
        assert "# TYPE repro_engine_cache_size gauge" in text
        assert 'repro_shard_messages{shard="2"} 4' in text
        assert "# TYPE repro_engine_latency_hit histogram" in text
        assert 'repro_engine_latency_hit_bucket{le="+Inf"} 2' in text
        assert "repro_engine_latency_hit_count 2" in text
        assert "repro_engine_latency_hit_sum" in text

    def test_write_metrics_format_by_extension(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("engine.queries").inc(2)
        json_path = tmp_path / "metrics.json"
        prom_path = tmp_path / "metrics.prom"
        assert write_metrics(registry, json_path) == "json"
        assert write_metrics(registry, prom_path) == "prometheus"
        loaded = json.loads(json_path.read_text(encoding="utf-8"))
        assert loaded == registry.snapshot()
        assert "repro_engine_queries 2" in prom_path.read_text(encoding="utf-8")


class TestUnifiedSchema:
    """The three stats surfaces all emit the same ``{name, type, value, labels}`` rows."""

    @staticmethod
    def _assert_schema(snapshot, prefix):
        assert snapshot, "empty snapshot"
        for entry in snapshot:
            assert set(entry) == {"name", "type", "value", "labels"}
            assert entry["name"].startswith(prefix)

    def test_engine_stats_snapshot_schema_and_round_trip(self):
        stats = EngineStats()
        stats.queries += 3
        stats.cache_hits += 1
        stats.observe_latency("hit", 0.002)
        snapshot = stats.snapshot()
        self._assert_schema(snapshot, "engine.")
        restored = EngineStats.from_snapshot(snapshot)
        assert restored == stats
        assert restored.queries == 3
        assert restored.latency_histogram("hit").count == 1

    def test_engine_stats_legacy_flat_dict_restores(self):
        restored = EngineStats.from_snapshot({"queries": 5, "cache_hits": 2})
        assert restored.queries == 5 and restored.cache_hits == 2

    def test_solver_stats_snapshot_schema_and_pickle(self):
        stats = SolverStats(candidates_evaluated=10, iterations=2)
        stats.commit_seconds.append(0.004)
        stats.commit_seconds.append(0.001)
        snapshot = stats.snapshot()
        self._assert_schema(snapshot, "solver.")
        assert SolverStats.from_snapshot(snapshot) == stats
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert list(clone.commit_seconds) == [0.004, 0.001]

    def test_shard_coordinator_snapshot_schema(self):
        from repro.graph.compact import CompactGraph
        from repro.graph.static import Graph
        from repro.shard.coordinator import ShardCoordinator
        from repro.shard.partition import partition_compact_graph

        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)], vertices=range(4))
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        coordinator = ShardCoordinator(partition_compact_graph(cgraph, 2))
        coordinator.decompose()
        snapshot = coordinator.snapshot()
        self._assert_schema(snapshot, "shard.")
        by_name = {entry["name"]: entry["value"] for entry in snapshot}
        for name, value in coordinator.stats().items():
            assert by_name["shard." + name] == value


class TestServeSimReconciliation:
    """Acceptance criterion: trace spans reconcile with the engine counters."""

    def test_traced_serve_sim_reconciles(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        enabled_before = tracer.is_enabled()
        code = main(
            [
                "serve-sim",
                "--dataset",
                "gnutella",
                "--scale",
                "0.15",
                "--snapshots",
                "4",
                "--budget",
                "3",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        tracer.drain()  # the CLI restores the flag; drop our copy of its spans
        output = capsys.readouterr().out
        assert code == 0
        assert tracer.is_enabled() is enabled_before  # CLI restores the flag
        assert "trace written to" in output
        assert "metrics snapshot (json) written to" in output

        spans = read_spans_jsonl(trace_path)
        assert spans, "traced run produced no spans"
        metric_values = {
            entry["name"]: entry["value"]
            for entry in json.loads(metrics_path.read_text(encoding="utf-8"))
            if not entry["labels"]
        }

        query_spans = [entry for entry in spans if entry["name"] == "engine.query"]
        assert len(query_spans) == metric_values["engine.queries"]
        outcomes = {"hit": 0, "warm": 0, "cold": 0}
        for entry in query_spans:
            outcomes[entry["attrs"]["outcome"]] += 1
        assert outcomes["hit"] == metric_values["engine.cache_hits"]
        assert outcomes["warm"] == metric_values["engine.warm_solves"]
        assert outcomes["cold"] == metric_values["engine.cold_solves"]

        # Every query span wraps exactly one latency observation, so the
        # summed span durations must cover the summed latency counters.
        span_seconds = sum(entry["duration"] for entry in query_spans)
        counter_seconds = (
            metric_values["engine.hit_seconds"]
            + metric_values["engine.warm_seconds"]
            + metric_values["engine.cold_seconds"]
        )
        assert span_seconds >= counter_seconds - 1e-9

        # Child spans are parented inside the trace: every solve span hangs
        # off a query span.
        span_names = {entry["span_id"]: entry["name"] for entry in spans}
        solve_spans = [
            entry for entry in spans if entry["name"].startswith("engine.solve.")
        ]
        assert solve_spans
        for entry in solve_spans:
            assert span_names.get(entry["parent_id"]) == "engine.query"
