"""Unit tests for the compact integer-ID backend structures."""

from __future__ import annotations

import pytest

from repro.cores.decomposition import compact_k_core_ids, compact_peel, core_decomposition
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.compact import (
    BACKEND_COMPACT,
    BACKEND_DICT,
    COMPACT_THRESHOLD,
    CompactGraph,
    DynamicCompactAdjacency,
    VertexInterner,
    resolve_backend,
)
from repro.graph.static import Graph


class TestVertexInterner:
    def test_ids_are_dense_and_stable(self):
        interner = VertexInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # re-interning does not move ids
        assert interner.id_of("b") == 1
        assert interner.vertex_of(0) == "a"
        assert len(interner) == 2
        assert "a" in interner and "c" not in interner
        assert list(interner) == ["a", "b"]

    def test_unknown_vertex_raises(self):
        interner = VertexInterner(["only"])
        with pytest.raises(VertexNotFoundError):
            interner.id_of("missing")
        assert interner.get_id("missing") == -1

    def test_translate_round_trips(self):
        interner = VertexInterner([10, "x", 20])
        assert interner.translate([0, 2]) == {10, 20}


class TestCompactGraph:
    def test_csr_shape_matches_graph(self):
        graph = Graph(edges=[(1, 2), (2, 3)], vertices=[1, 2, 3, 99])
        cgraph = CompactGraph.from_graph(graph)
        assert cgraph.num_vertices == 4
        assert cgraph.num_edges == 2
        assert sum(cgraph.degrees) == 2 * graph.num_edges
        two = cgraph.interner.id_of(2)
        neighbours = cgraph.interner.translate(cgraph.neighbor_ids(two))
        assert neighbours == {1, 3}
        # Vertex 99 is isolated: empty row.
        assert cgraph.neighbor_ids(cgraph.interner.id_of(99)) == []

    def test_ordered_snapshot_ids_follow_tie_break_order(self):
        graph = Graph(vertices=[5, 1, 3])
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        assert [cgraph.interner.vertex_of(vid) for vid in range(3)] == [1, 3, 5]

    def test_compact_peel_requires_ordered_snapshot(self):
        graph = Graph(edges=[(1, 2)])
        unordered = CompactGraph.from_graph(graph, ordered=False)
        with pytest.raises(ParameterError):
            compact_peel(unordered)

    def test_compact_peel_empty_graph(self):
        cgraph = CompactGraph.from_graph(Graph())
        core, order = compact_peel(cgraph)
        assert core == [] and order == []

    def test_compact_k_core_ids_matches_decomposition(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        cgraph = CompactGraph.from_graph(graph)
        members = cgraph.interner.translate(compact_k_core_ids(cgraph, 2))
        assert members == core_decomposition(graph).k_core_vertices(2)


class TestDynamicCompactAdjacency:
    def test_mirror_tracks_edges(self):
        graph = Graph(edges=[("a", "b")], vertices=["a", "b", "c"])
        mirror = DynamicCompactAdjacency.from_graph(graph)
        a, b = mirror.interner.id_of("a"), mirror.interner.id_of("b")
        assert b in mirror.adj[a] and a in mirror.adj[b]
        c = mirror.ensure_vertex("c")
        d = mirror.ensure_vertex("d")  # new vertex grows the structure
        assert len(mirror) == 4
        mirror.add_edge_ids(c, d)
        assert d in mirror.adj[c]
        mirror.remove_edge_ids(c, d)
        assert d not in mirror.adj[c]
        mirror.remove_edge_ids(c, d)  # removing an absent edge is a no-op


class TestResolveBackend:
    """The policy itself lives in repro.backends; this pins the re-export."""

    def test_explicit_backends_pass_through(self):
        assert resolve_backend("dict", 10**9) == BACKEND_DICT
        assert resolve_backend("compact", 1) == BACKEND_COMPACT

    def test_auto_resolves_by_size(self):
        from repro.backends import numpy_available

        assert resolve_backend("auto", COMPACT_THRESHOLD - 1) == BACKEND_DICT
        expected = "numpy" if numpy_available() else BACKEND_COMPACT
        assert resolve_backend("auto", COMPACT_THRESHOLD) == expected

    def test_unknown_backend_raises(self):
        with pytest.raises(ParameterError):
            resolve_backend("warp", 10)
