"""Tests for the exact polynomial solvers for k = 1 and k = 2 (Theorem 1)."""

from __future__ import annotations

import random

import pytest

from repro.anchored.bruteforce import BruteForceAnchoredKCore
from repro.anchored.exact_small_k import ExactSmallK, solve_k1, solve_k2
from repro.anchored.followers import compute_followers
from repro.cores.decomposition import k_core
from repro.errors import ParameterError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.static import Graph


class TestSolveK1:
    def test_anchors_isolated_vertices_only(self):
        graph = Graph(edges=[(1, 2), (2, 3)], vertices=[10, 11, 12])
        result = solve_k1(graph, budget=2)
        assert set(result.anchors) <= {10, 11, 12}
        assert len(result.anchors) == 2
        assert result.followers == frozenset()
        assert result.anchored_core_size == 3 + 2  # 1-core plus the two anchors

    def test_budget_exceeds_isolated_vertices(self):
        graph = Graph(edges=[(1, 2)], vertices=[5])
        result = solve_k1(graph, budget=4)
        assert result.anchors == (5,)

    def test_no_isolated_vertices(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        result = solve_k1(graph, budget=3)
        assert result.anchors == ()
        assert result.anchored_core_size == 3

    def test_negative_budget_raises(self):
        with pytest.raises(ParameterError):
            solve_k1(Graph(), -1)


class TestSolveK2:
    def test_path_hanging_off_a_core(self):
        # Triangle (2-core) with a path 3-4-5-6 hanging off it: anchoring the
        # far end (6) pulls the whole path in.
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6)])
        result = solve_k2(graph, budget=1)
        assert result.anchors == (6,)
        assert set(result.followers) == {4, 5}
        assert result.anchored_core_size == 6

    def test_pure_tree_needs_two_anchors(self):
        # A path with no 2-core at all: one anchor gains nothing, two anchors
        # at the endpoints pull in the interior.
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 5)])
        one = solve_k2(graph, budget=1)
        two = solve_k2(graph, budget=2)
        assert one.num_followers == 0
        assert set(two.anchors) == {1, 5}
        assert set(two.followers) == {2, 3, 4}

    def test_star_tree(self):
        # A star: anchoring two leaves covers only the centre.
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        result = solve_k2(graph, budget=2)
        assert result.num_followers == 1
        assert 0 in result.followers

    def test_budget_split_across_trees(self):
        # Two separate paths hanging off one triangle: each is worth anchoring.
        graph = Graph(
            edges=[
                (1, 2), (2, 3), (1, 3),       # 2-core
                (3, 10), (10, 11), (11, 12),  # first tail
                (1, 20), (20, 21),            # second tail
            ]
        )
        result = solve_k2(graph, budget=2)
        assert set(result.anchors) == {12, 21}
        assert set(result.followers) == {10, 11, 20}

    def test_followers_match_recomputation(self):
        graph = erdos_renyi_graph(40, 45, seed=3)
        result = solve_k2(graph, budget=3)
        assert set(result.followers) == compute_followers(graph, 2, result.anchors)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("budget", [1, 2, 3])
    def test_matches_brute_force_optimum(self, seed, budget):
        # Sparse random graphs have plenty of tree structure outside the 2-core.
        graph = erdos_renyi_graph(18, 19, seed=seed)
        exact = solve_k2(graph, budget=budget)
        brute = BruteForceAnchoredKCore(graph, 2, budget, max_combinations=10_000_000).select()
        assert exact.num_followers == brute.num_followers, (seed, budget)

    def test_empty_graph(self):
        result = solve_k2(Graph(), budget=2)
        assert result.anchors == ()
        assert result.num_followers == 0

    def test_graph_entirely_inside_two_core(self):
        edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
        result = solve_k2(Graph(edges=edges), budget=2)
        assert result.anchors == ()
        assert result.num_followers == 0


class TestDispatcher:
    def test_dispatches_by_k(self, toy_graph):
        assert ExactSmallK(toy_graph, 1, 2).select().algorithm == "Exact-k1"
        assert ExactSmallK(toy_graph, 2, 2).select().algorithm == "Exact-k2"

    def test_rejects_np_hard_regime(self, toy_graph):
        with pytest.raises(ParameterError):
            ExactSmallK(toy_graph, 3, 2)

    def test_rejects_negative_budget(self, toy_graph):
        with pytest.raises(ParameterError):
            ExactSmallK(toy_graph, 2, -1)

    def test_k2_on_toy_graph_beats_or_matches_brute_force(self, toy_graph):
        exact = ExactSmallK(toy_graph, 2, 2).select()
        brute = BruteForceAnchoredKCore(toy_graph, 2, 2).select()
        assert exact.num_followers == brute.num_followers
