"""Unit tests for the streaming engine: ingest, cache, queries, checkpoints."""

from __future__ import annotations

import pickle

import pytest

from repro.anchored.followers import compute_followers
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.cores.decomposition import core_numbers
from repro.engine import (
    CacheKey,
    EngineStats,
    IngestBuffer,
    ResultCache,
    StreamingAVTEngine,
    load_checkpoint,
    read_state,
    save_checkpoint,
    write_state,
)
from repro.errors import CheckpointError, ParameterError
from repro.graph.datasets import toy_example_graph
from repro.graph.dynamic import EdgeDelta
from repro.graph.static import Graph


def clique_with_tail() -> Graph:
    """K6 minus edge (0, 1), plus a pendant chain 0-10-11.

    The near-clique sits at core 4 (core 5 once (0, 1) is inserted) while the
    chain sits at core 1 — changes inside the dense block are invisible to
    small-k queries, which is what selective invalidation exploits.
    """
    graph = Graph()
    clique = range(6)
    for u in clique:
        for v in clique:
            if u < v and (u, v) != (0, 1):
                graph.add_edge(u, v)
    graph.add_edge(0, 10)
    graph.add_edge(10, 11)
    return graph


# ---------------------------------------------------------------------------
# Ingest buffer
# ---------------------------------------------------------------------------
class TestIngestBuffer:
    def test_coalesces_duplicates(self):
        buffer = IngestBuffer()
        buffer.insert(1, 2)
        buffer.insert(2, 1)  # same undirected edge
        assert buffer.pending_changes == 1
        assert buffer.cancelled == 1

    def test_opposing_pair_keeps_last_operation_without_graph(self):
        buffer = IngestBuffer()
        buffer.insert(1, 2)
        buffer.remove(1, 2)
        delta = buffer.flush()
        assert delta.inserted == ()
        assert delta.removed == ((1, 2),)

    def test_opposing_pair_cancels_against_live_graph(self):
        graph = Graph(edges=[(5, 6)])
        buffer = IngestBuffer(graph)
        buffer.insert(1, 2)  # edge absent: pending insert
        buffer.remove(1, 2)  # absent edge would stay absent -> both cancel
        assert buffer.is_empty()
        assert buffer.cancelled == 2

    def test_remove_then_insert_of_present_edge_cancels(self):
        graph = Graph(edges=[(1, 2)])
        buffer = IngestBuffer(graph)
        buffer.remove(1, 2)
        buffer.insert(1, 2)
        assert buffer.is_empty()

    def test_noop_operations_are_dropped_against_live_graph(self):
        graph = Graph(edges=[(1, 2)])
        buffer = IngestBuffer(graph)
        buffer.insert(1, 2)  # already present
        buffer.remove(3, 4)  # already absent
        assert buffer.is_empty()
        assert buffer.cancelled == 2
        assert buffer.ingested == 2

    def test_extend_and_peek_do_not_clear(self):
        buffer = IngestBuffer()
        buffer.extend(EdgeDelta.from_iterables(inserted=[(1, 2)], removed=[(3, 4)]))
        peeked = buffer.peek()
        assert peeked.num_changes == 2
        assert buffer.pending_changes == 2
        flushed = buffer.flush()
        assert flushed == peeked
        assert buffer.is_empty()


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
def _result(tag: int):
    """A distinguishable stand-in payload (the cache never inspects values)."""
    return GreedyAnchoredKCore(Graph(edges=[(tag, tag + 1)]), 1, 0).select()


class TestResultCache:
    def test_get_put_and_counters(self):
        cache = ResultCache(capacity=4)
        key = CacheKey(0, 3, 5, "greedy")
        assert cache.get(key) is None
        value = _result(1)
        cache.put(key, value)
        assert cache.get(key) is value
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        first, second, third = (CacheKey(0, k, 1, "greedy") for k in (1, 2, 3))
        cache.put(first, _result(1))
        cache.put(second, _result(2))
        cache.get(first)  # refresh recency: second is now LRU
        cache.put(third, _result(3))
        assert first in cache and third in cache
        assert second not in cache
        assert cache.evictions == 1

    def test_promote_rekeys_surviving_entries(self):
        cache = ResultCache(capacity=8)
        low = CacheKey(0, 2, 1, "greedy")
        high = CacheKey(0, 5, 1, "greedy")
        cache.put(low, _result(1))
        cache.put(high, _result(2))
        promoted, invalidated = cache.promote(0, 1, keep=lambda key: key.k <= 4)
        assert (promoted, invalidated) == (1, 1)
        assert CacheKey(1, 2, 1, "greedy") in cache
        assert CacheKey(0, 2, 1, "greedy") not in cache
        assert len(cache) == 1

    def test_promote_drops_entries_from_older_versions(self):
        cache = ResultCache(capacity=8)
        stale = CacheKey(0, 2, 1, "greedy")
        current = CacheKey(3, 2, 1, "greedy")
        cache.put(stale, _result(1))
        cache.put(current, _result(2))
        cache.promote(3, 4, keep=lambda key: True)
        assert len(cache) == 1
        assert CacheKey(4, 2, 1, "greedy") in cache

    def test_invalidate_predicate(self):
        cache = ResultCache(capacity=8)
        for k in (1, 2, 3):
            cache.put(CacheKey(0, k, 1, "greedy"), _result(k))
        assert cache.invalidate(lambda key: key.k >= 2) == 2
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ParameterError):
            ResultCache(capacity=0)


# ---------------------------------------------------------------------------
# Engine: queries and caching
# ---------------------------------------------------------------------------
class TestEngineQueries:
    def test_cold_query_matches_scratch_greedy(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        result = engine.query(3, 2)
        scratch = GreedyAnchoredKCore(toy_graph, 3, 2).select()
        assert result.anchors == scratch.anchors
        assert result.followers == scratch.followers
        assert engine.stats.cold_solves == 1

    def test_repeated_query_is_served_from_cache_without_solver(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        first = engine.query(3, 2)
        invocations = engine.stats.solver_invocations
        second = engine.query(3, 2)
        assert second is first
        assert engine.stats.solver_invocations == invocations
        assert engine.stats.cache_hits == 1

    def test_distinct_parameters_use_distinct_entries(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.query(3, 1)
        engine.query(2, 2)
        assert engine.stats.cache_hits == 0
        assert len(engine.cache) == 3

    def test_update_invalidates_affected_entry(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.ingest_insert(1, 5)  # periphery change: touches low-core region
        engine.query(3, 2)
        assert engine.stats.cache_misses == 2
        assert engine.stats.cache_hits == 0
        assert engine.graph_version == 1

    def test_dense_core_change_keeps_small_k_entries(self):
        engine = StreamingAVTEngine(clique_with_tail())
        engine.query(2, 1)
        engine.ingest_insert(0, 1)  # completes the clique: cores 4 -> 5
        assert engine.graph_version == 0  # not yet flushed
        hit = engine.query(2, 1)
        assert engine.graph_version == 1
        assert engine.stats.cache_hits == 1  # entry was promoted, not evicted
        assert engine.stats.cache_promotions == 1
        assert hit.k == 2

    def test_dense_core_change_invalidates_large_k_entries(self):
        engine = StreamingAVTEngine(clique_with_tail())
        engine.query(5, 1)
        engine.ingest_insert(0, 1)
        engine.query(5, 1)
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_invalidations == 1

    def test_warm_query_reuses_previous_anchor_set(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        cold = engine.query(3, 2)
        engine.ingest_insert(1, 5)
        warm = engine.query(3, 2)
        assert engine.stats.warm_solves == 1
        assert engine.stats.cold_solves == 1
        assert warm.algorithm == "IncAVT-warm"
        assert len(warm.anchors) <= 2
        # warm answers stay internally consistent with the live graph
        assert set(warm.followers) == compute_followers(engine.graph, 3, warm.anchors)
        assert cold.anchors  # cold pass actually chose something to carry

    def test_exact_query_never_reuses_cached_warm_answer(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.ingest_insert(1, 5)
        warm = engine.query(3, 2)  # heuristic answer now cached
        assert warm.algorithm == "IncAVT-warm"
        exact = engine.query(3, 2, warm=False)
        scratch = GreedyAnchoredKCore(engine.graph, 3, 2).select()
        assert exact.algorithm == scratch.algorithm
        assert exact.anchors == scratch.anchors
        # the upgraded entry serves both modes from now on
        assert engine.query(3, 2) is exact
        assert engine.query(3, 2, warm=False) is exact

    def test_warm_state_map_is_bounded(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph, cache_capacity=16)
        for budget in range(20):
            engine.query(2, budget)
        assert len(engine._warm) <= engine._warm_capacity

    def test_warm_disabled_always_solves_cold(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph, warm_queries=False)
        engine.query(3, 2)
        engine.ingest_insert(1, 5)
        engine.query(3, 2)
        assert engine.stats.cold_solves == 2
        assert engine.stats.warm_solves == 0

    def test_noop_ingest_does_not_bump_version_or_evict(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.ingest_insert(8, 9)  # edge already present: cancelled in buffer
        engine.query(3, 2)
        assert engine.graph_version == 0
        assert engine.stats.cache_hits == 1
        assert engine.stats.updates_cancelled == 1

    def test_insert_remove_round_trip_cancels_in_buffer(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.ingest_insert(1, 5)
        engine.ingest_remove(1, 5)
        engine.query(3, 2)
        assert engine.graph_version == 0
        assert engine.stats.cache_hits == 1

    def test_auto_flush_at_batch_size(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph, batch_size=2)
        engine.ingest_insert(1, 5)
        assert engine.pending_updates == 1
        engine.ingest_insert(4, 5)
        assert engine.pending_updates == 0
        assert engine.stats.deltas_applied == 1

    def test_query_flushes_pending_updates_first(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph, batch_size=None)
        engine.ingest_insert(1, 5)
        engine.query(3, 2)
        assert engine.pending_updates == 0
        assert engine.graph.has_edge(1, 5)

    def test_solver_selection_and_validation(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        olak = engine.query(3, 2, solver="olak")
        assert olak.algorithm == "OLAK"
        with pytest.raises(ParameterError):
            engine.query(3, 2, solver="nope")
        with pytest.raises(ParameterError):
            engine.query(0, 2)
        with pytest.raises(ParameterError):
            engine.query(3, -1)
        with pytest.raises(ParameterError):
            StreamingAVTEngine(toy_graph, default_solver="nope")
        with pytest.raises(ParameterError):
            StreamingAVTEngine(toy_graph, batch_size=0)

    def test_engine_on_empty_graph(self):
        engine = StreamingAVTEngine()
        result = engine.query(2, 1)
        assert result.anchors == ()
        engine.ingest_insert(1, 2)
        engine.ingest_insert(2, 3)
        engine.ingest_insert(1, 3)
        result = engine.query(2, 1)
        assert engine.graph.num_edges == 3
        assert result.k == 2

    def test_maintained_cores_stay_valid_under_stream(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.ingest(EdgeDelta.from_iterables(inserted=[(1, 5), (4, 9)], removed=[(2, 3)]))
        engine.query(3, 2)
        assert engine.core_numbers() == core_numbers(engine.graph)


# ---------------------------------------------------------------------------
# Engine stats
# ---------------------------------------------------------------------------
class TestEngineStats:
    def test_hit_rate_and_snapshot_round_trip(self):
        stats = EngineStats(queries=4, cache_hits=3, cache_misses=1)
        assert stats.hit_rate == pytest.approx(0.75)
        clone = EngineStats.from_snapshot(stats.snapshot())
        assert clone == stats

    def test_snapshot_ignores_unknown_keys(self):
        restored = EngineStats.from_snapshot({"queries": 2, "future_counter": 9})
        assert restored.queries == 2

    def test_mean_latency_paths(self):
        stats = EngineStats(cache_hits=2, hit_seconds=0.4)
        assert stats.mean_latency("hit") == pytest.approx(0.2)
        assert stats.mean_latency("cold") == 0.0
        with pytest.raises(ValueError):
            stats.mean_latency("other")

    def test_summary_mentions_hit_rate(self):
        stats = EngineStats(queries=2, cache_hits=1, cache_misses=1)
        assert "hit rate 50.0%" in stats.summary()


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_state_round_trip_preserves_answers(self, toy_graph):
        engine = StreamingAVTEngine(toy_graph)
        engine.query(3, 2)
        engine.ingest_insert(1, 5)
        before = engine.query(3, 2)
        resumed = StreamingAVTEngine.from_state(engine.to_state())
        after = resumed.query(3, 2)
        assert after.anchors == before.anchors
        assert after.followers == before.followers
        assert resumed.graph_version == engine.graph_version
        assert resumed.graph == engine.graph

    def test_restore_serves_cached_answer_without_solver(self, toy_graph, tmp_path):
        engine = StreamingAVTEngine(toy_graph)
        cached = engine.query(3, 2)
        path = tmp_path / "engine.ckpt"
        engine.checkpoint(path)
        resumed = StreamingAVTEngine.restore(path)
        answer = resumed.query(3, 2)
        assert answer.anchors == cached.anchors
        assert resumed.stats.solver_invocations == engine.stats.solver_invocations
        assert resumed.stats.checkpoints_restored == 1
        assert engine.stats.checkpoints_saved == 1

    def test_checkpoint_flushes_pending_updates(self, toy_graph, tmp_path):
        engine = StreamingAVTEngine(toy_graph, batch_size=None)
        engine.ingest_insert(1, 5)
        path = tmp_path / "engine.ckpt"
        save_checkpoint(engine, path)
        resumed = load_checkpoint(path)
        assert resumed.graph.has_edge(1, 5)
        assert resumed.pending_updates == 0

    def test_restore_overrides_capacity(self, toy_graph, tmp_path):
        engine = StreamingAVTEngine(toy_graph, cache_capacity=8)
        path = tmp_path / "engine.ckpt"
        engine.checkpoint(path)
        resumed = StreamingAVTEngine.restore(path, cache_capacity=2)
        assert resumed.cache.capacity == 2
        with pytest.raises(ParameterError):
            StreamingAVTEngine.restore(path, bogus_option=1)

    def test_missing_and_corrupt_files_raise_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_state(tmp_path / "absent.ckpt")
        garbled = tmp_path / "garbled.ckpt"
        garbled.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            read_state(garbled)
        bad_protocol = tmp_path / "bad_protocol.ckpt"
        bad_protocol.write_bytes(b"\x80garbage")  # pickle reports ValueError here
        with pytest.raises(CheckpointError):
            read_state(bad_protocol)
        wrong_payload = tmp_path / "wrong.ckpt"
        with open(wrong_payload, "wb") as handle:
            pickle.dump({"magic": "something-else"}, handle)
        with pytest.raises(CheckpointError):
            read_state(wrong_payload)

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "future.ckpt"
        with open(path, "wb") as handle:
            pickle.dump(
                {"magic": "repro-engine-checkpoint", "format": 999, "state": {}}, handle
            )
        with pytest.raises(CheckpointError):
            read_state(path)

    def test_malformed_state_raises(self):
        with pytest.raises(CheckpointError):
            StreamingAVTEngine.from_state({"vertices": []})

    def test_write_state_round_trips(self, tmp_path):
        path = tmp_path / "raw.ckpt"
        write_state({"hello": [1, 2, 3]}, path)
        assert read_state(path) == {"hello": [1, 2, 3]}

    def test_unpicklable_state_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        with pytest.raises(CheckpointError):
            write_state({"vertex": lambda: None}, path)
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()
