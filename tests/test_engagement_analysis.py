"""Tests for the engagement analytics (unraveling cascades, series, resilience)."""

from __future__ import annotations

import pytest

from repro.analysis.engagement import (
    anchored_engagement_series,
    core_resilience,
    departure_cascade,
    engagement_series,
    most_critical_users,
)
from repro.avt.problem import AVTProblem
from repro.avt.trackers import GreedyTracker
from repro.cores.decomposition import k_core
from repro.errors import ParameterError, VertexNotFoundError
from repro.graph.datasets import toy_example_evolving_graph
from repro.graph.static import Graph


class TestDepartureCascade:
    def test_departure_of_non_core_user_changes_nothing(self, toy_graph):
        assert departure_cascade(toy_graph, 3, [4]) == set()

    def test_departure_of_core_user_unravels_neighbours(self, toy_graph):
        # Vertex 12 holds the 3-core together: removing it drops others too.
        cascade = departure_cascade(toy_graph, 3, [12])
        assert 12 in cascade
        assert cascade == {8, 9, 12, 13, 16}

    def test_departure_of_all_core_members(self, toy_graph):
        core_members = k_core(toy_graph, 3)
        assert departure_cascade(toy_graph, 3, core_members) == core_members

    def test_unknown_leaver_raises(self, toy_graph):
        with pytest.raises(VertexNotFoundError):
            departure_cascade(toy_graph, 3, [999])

    def test_invalid_k_raises(self, toy_graph):
        with pytest.raises(ParameterError):
            departure_cascade(toy_graph, 0, [1])

    def test_cascade_contained_in_original_core(self, cl_graph):
        engaged = k_core(cl_graph, 4)
        leavers = sorted(engaged, key=repr)[:3]
        cascade = departure_cascade(cl_graph, 4, leavers)
        assert cascade <= engaged
        assert set(leavers) <= cascade


class TestCriticalUsers:
    def test_scores_are_positive_and_sorted(self, toy_graph):
        ranked = most_critical_users(toy_graph, 3, top=5)
        assert ranked
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(score >= 1 for score in scores)

    def test_every_core_member_is_critical_in_the_toy_graph(self, toy_graph):
        ranked = dict(most_critical_users(toy_graph, 3, top=10))
        assert set(ranked) == {8, 9, 12, 13, 16}
        # The tight 3-core means any single departure collapses it entirely.
        assert all(score == 5 for score in ranked.values())

    def test_candidates_restriction(self, toy_graph):
        ranked = most_critical_users(toy_graph, 3, top=10, candidates=[8, 9, 4])
        assert {vertex for vertex, _ in ranked} == {8, 9}

    def test_top_validation(self, toy_graph):
        with pytest.raises(ParameterError):
            most_critical_users(toy_graph, 3, top=0)


class TestSeries:
    def test_engagement_series_matches_per_snapshot_core(self, toy_evolving):
        series = engagement_series(toy_evolving, 3)
        expected = [len(k_core(snapshot, 3)) for snapshot in toy_evolving.snapshots()]
        assert series == expected
        assert len(series) == 2

    def test_anchored_series_uses_tracker_output(self):
        evolving = toy_example_evolving_graph()
        problem = AVTProblem(evolving, k=3, budget=2, name="toy")
        tracked = GreedyTracker().track(problem)
        anchored = anchored_engagement_series(evolving, 3, tracked.anchor_sets)
        plain = engagement_series(evolving, 3)
        assert len(anchored) == len(plain)
        assert all(a >= p for a, p in zip(anchored, plain))
        assert anchored == [s.result.anchored_core_size for s in tracked]

    def test_anchored_series_requires_matching_length(self, toy_evolving):
        with pytest.raises(ParameterError):
            anchored_engagement_series(toy_evolving, 3, [(7, 10)])

    def test_anchored_series_ignores_unknown_anchors(self, toy_evolving):
        series = anchored_engagement_series(toy_evolving, 3, [(999,), (999,)])
        assert series == engagement_series(toy_evolving, 3)

    def test_invalid_k(self, toy_evolving):
        with pytest.raises(ParameterError):
            engagement_series(toy_evolving, 0)


class TestResilience:
    def test_zero_departures_is_fully_resilient(self, toy_graph):
        assert core_resilience(toy_graph, 3, num_departures=0) == pytest.approx(1.0)

    def test_fragile_core_scores_low(self, toy_graph):
        # Any single departure collapses the toy 3-core entirely.
        assert core_resilience(toy_graph, 3, num_departures=1, trials=5) == pytest.approx(0.0)

    def test_clique_is_resilient_to_single_departures(self):
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
        resilience = core_resilience(Graph(edges=edges), 3, num_departures=1, trials=5)
        assert resilience == pytest.approx(5 / 6)

    def test_empty_core_is_trivially_resilient(self):
        graph = Graph(edges=[(1, 2)])
        assert core_resilience(graph, 3, num_departures=2) == 1.0

    def test_deterministic_for_a_seed(self, cl_graph):
        first = core_resilience(cl_graph, 4, num_departures=3, trials=10, seed=5)
        second = core_resilience(cl_graph, 4, num_departures=3, trials=10, seed=5)
        assert first == second

    def test_parameter_validation(self, toy_graph):
        with pytest.raises(ParameterError):
            core_resilience(toy_graph, 0, 1)
        with pytest.raises(ParameterError):
            core_resilience(toy_graph, 3, -1)
        with pytest.raises(ParameterError):
            core_resilience(toy_graph, 3, 1, trials=0)
