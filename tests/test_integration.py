"""End-to-end integration tests across the full stack.

These tests run the complete pipeline — dataset stand-in, AVT problem, all
trackers, metrics and reporting — at a small scale and check the cross-cutting
relationships the paper's evaluation relies on.
"""

from __future__ import annotations

import pytest

from repro import (
    AVTProblem,
    GreedyTracker,
    IncAVTTracker,
    OLAKTracker,
    RCMTracker,
    load_dataset,
)
from repro.anchored.followers import compute_followers
from repro.avt.metrics import follower_quality, speedup, summarise, visited_ratio
from repro.bench.reporting import format_table
from repro.bench.runner import default_trackers, run_sweep


@pytest.fixture(scope="module")
def gnutella_problem():
    evolving = load_dataset("gnutella", num_snapshots=4, scale=0.2, seed=11)
    return AVTProblem(evolving, k=3, budget=3, name="gnutella")


@pytest.fixture(scope="module")
def all_results(gnutella_problem):
    return {
        "OLAK": OLAKTracker().track(gnutella_problem),
        "Greedy": GreedyTracker().track(gnutella_problem),
        "IncAVT": IncAVTTracker().track(gnutella_problem),
        "RCM": RCMTracker().track(gnutella_problem),
    }


class TestCrossAlgorithmRelationships:
    def test_every_tracker_covers_every_snapshot(self, gnutella_problem, all_results):
        for result in all_results.values():
            assert len(result) == gnutella_problem.num_snapshots

    def test_visited_vertices_ordering_matches_paper(self, all_results):
        """Figures 4/6/8: OLAK visits the most, IncAVT the fewest."""
        olak = all_results["OLAK"].total_visited_vertices
        greedy = all_results["Greedy"].total_visited_vertices
        incavt = all_results["IncAVT"].total_visited_vertices
        assert olak > greedy >= incavt

    def test_follower_quality_is_comparable_across_heuristics(self, all_results):
        """Figures 9-11: all four approaches find similar follower counts."""
        quality = follower_quality(all_results.values(), reference="Greedy")
        assert quality["OLAK"] == pytest.approx(1.0, abs=0.2)
        assert quality["IncAVT"] >= 0.6
        assert quality["RCM"] >= 0.6

    def test_greedy_and_olak_agree_exactly(self, all_results):
        """Both evaluate every useful candidate exhaustively, so their greedy
        choices coincide snapshot by snapshot."""
        assert (
            all_results["Greedy"].followers_per_snapshot
            == all_results["OLAK"].followers_per_snapshot
        )

    def test_followers_are_verifiable_against_the_graphs(self, gnutella_problem, all_results):
        snapshots = list(gnutella_problem.evolving_graph.snapshots())
        for result in all_results.values():
            for snapshot_result, graph in zip(result, snapshots):
                expected = compute_followers(graph, gnutella_problem.k, snapshot_result.anchors)
                assert set(snapshot_result.result.followers) == expected

    def test_metrics_speedup_and_ratios_are_consistent(self, all_results):
        results = list(all_results.values())
        assert speedup(results, baseline="OLAK", target="IncAVT") >= 1.0
        assert visited_ratio(results, baseline="OLAK", target="IncAVT") > 1.0
        rows = summarise(results)
        assert len(rows) == 4
        assert format_table(rows)


class TestSweepIntegration:
    def test_run_sweep_with_default_lineup(self, gnutella_problem):
        table = run_sweep([gnutella_problem.truncated(2)], trackers=default_trackers())
        assert len(table) == 4
        algorithms = set(table.distinct("algorithm"))
        assert algorithms == {"OLAK", "Greedy", "IncAVT", "RCM"}
        for row in table.rows():
            assert row["T"] == 2
            assert row["followers"] >= 0


class TestPublicAPI:
    def test_star_import_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        problem = AVTProblem(
            load_dataset("eu_core", num_snapshots=3, scale=0.15), k=3, budget=2
        )
        result = IncAVTTracker().track(problem)
        assert result.summary()
        assert len(result) == 3
