"""Unraveling analysis: critical users, departure cascades and anchoring.

The paper's opening example is the cascading drop-out: when a critical user
leaves, friends who relied on her fall below the engagement threshold and
leave too.  This example uses the engagement-analytics module to

1. find the most critical users of a community (largest departure cascade),
2. measure how resilient the engaged community is to random departures, and
3. show how anchoring a few users with the Greedy solver repairs the damage
   after the most critical user actually leaves.

Run with::

    python examples/unraveling_analysis.py
"""

from __future__ import annotations

from repro import GreedyAnchoredKCore, k_core
from repro.analysis import core_resilience, departure_cascade, most_critical_users
from repro.graph.generators import chung_lu_graph

K = 4
BUDGET = 4


def main() -> None:
    community = chung_lu_graph(num_vertices=500, num_edges=2000, skew=1.25, seed=33)
    engaged = k_core(community, K)
    print(f"Community: {community.num_vertices} users, {community.num_edges} ties")
    print(f"Engaged equilibrium (k={K}-core): {len(engaged)} users")
    print()

    print("Most critical users (size of the cascade their departure triggers):")
    ranked = most_critical_users(community, K, top=5)
    for user, cascade_size in ranked:
        print(f"  user {user}: {cascade_size} users would disengage")
    resilience = core_resilience(community, K, num_departures=3, trials=25, seed=1)
    print(f"Resilience to 3 random departures: {resilience:.1%} of the core survives")
    print()

    most_critical = ranked[0][0]
    cascade = departure_cascade(community, K, [most_critical])
    print(f"Suppose user {most_critical} leaves: {len(cascade)} users disengage.")

    damaged = community.copy()
    damaged.remove_vertex(most_critical)
    remaining_core = k_core(damaged, K)
    print(f"Engaged community after the departure: {len(remaining_core)} users")

    repair = GreedyAnchoredKCore(damaged, K, BUDGET).select()
    print(
        f"Anchoring {len(repair.anchors)} users ({', '.join(map(str, repair.anchors))}) "
        f"wins back {repair.num_followers} users: engaged community grows to "
        f"{repair.anchored_core_size}."
    )
    recovered = repair.anchored_core_size - len(remaining_core)
    print(f"Net recovery: {recovered} of the {len(cascade)} lost users re-engaged.")


if __name__ == "__main__":
    main()
