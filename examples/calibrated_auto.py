"""Measured backend selection: calibrate once, let ``backend="auto"`` follow.

The registry's default ``auto`` policy ranks backends by a hard-coded
priority ladder (numba > numpy > compact > dict on large amortised
workloads).  That ladder encodes an *expectation*; this example replaces it
with a *measurement* on the machine actually running the workload:

1. sweep every available backend over size bands and workload shapes
   (:func:`repro.backends.run_calibration` — the same sweep as
   ``avt-bench calibrate``);
2. persist the winners as a JSON calibration table;
3. load the table (here via :func:`repro.backends.load_calibration`; in a
   deployment, point ``REPRO_CALIBRATION`` at the file) and watch
   ``backend="auto"`` resolve to the measured winner of the band containing
   each graph.

Run with::

    python examples/calibrated_auto.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.anchored.greedy import GreedyAnchoredKCore
from repro.backends import (
    CalibrationSpec,
    active_calibration,
    backend_availability,
    clear_calibration,
    load_calibration,
    resolve_backend,
    run_calibration,
)
from repro.graph.generators import chung_lu_graph

#: Kept small so the example runs in seconds; a real calibration would use
#: the default bands (up to 40k vertices) and 3+ repetitions.
MAX_BAND_VERTICES = 1200
REPETITIONS = 2
PROBE_SIZES = (500, 10_000, 100_000)


def main() -> None:
    print("Backend availability on this interpreter:")
    for name, reason in backend_availability().items():
        print(f"  {name:<8} {'available' if reason is None else f'skipped: {reason}'}")
    print()

    print("Before calibration (priority ladder):")
    for size in PROBE_SIZES:
        print(f"  auto @ {size:>7} vertices -> {resolve_backend('auto', size)}")
    print()

    spec = CalibrationSpec(repetitions=REPETITIONS).scaled(MAX_BAND_VERTICES)
    print(
        f"Sweeping {len(spec.bands)} size bands x {len(spec.workloads)} workloads "
        f"(best of {spec.repetitions})..."
    )
    table = run_calibration(spec)
    for band in table.bands:
        totals = {
            name: sum(per.values()) for name, per in sorted(band["timings"].items())
        }
        timing_text = " ".join(f"{name}={value:.4f}s" for name, value in totals.items())
        print(f"  band {band['name']:<7} winner={band['winner']:<8} {timing_text}")
    print()

    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "calibration.json"
        table.save(path)
        print(f"Table persisted to {path.name} "
              f"(load anywhere via REPRO_CALIBRATION={path.name})")
        clear_calibration()  # forget the in-process table; reload from disk
        load_calibration(path)
        assert active_calibration() is not None

        print("After calibration (measured winners):")
        for size in PROBE_SIZES:
            print(f"  auto @ {size:>7} vertices -> {resolve_backend('auto', size)}")
        print()

        # An end-to-end query under the measured policy: "auto" here silently
        # resolves to the calibrated winner for this graph's size band.
        graph = chung_lu_graph(800, 2400, seed=9)
        result = GreedyAnchoredKCore(graph, 3, 2, backend="auto").select()
        print(
            f"Greedy on chung_lu(n={graph.num_vertices}) under the table: "
            f"anchors={sorted(result.anchors)} followers={len(result.followers)}"
        )

    clear_calibration()


if __name__ == "__main__":
    main()
