"""Impact analysis of advertising placement on an evolving social network.

The paper's introduction motivates AVT with advertising placement: the users
worth targeting (anchoring) change as the friendship graph evolves, so a
campaign that re-uses the anchors selected at launch slowly loses reach.  This
example quantifies that effect on the Deezer-like stand-in:

* ``static`` strategy — select anchors once at week 1 and keep paying them;
* ``tracked`` strategy — re-select anchors every week with IncAVT.

For every week it reports the campaign reach (size of the anchored k-core,
i.e. the engaged audience the advertiser can address) of both strategies.

Run with::

    python examples/advertising_placement.py
"""

from __future__ import annotations

from repro import AVTProblem, IncAVTTracker, load_dataset
from repro.anchored.followers import anchored_k_core

DATASET = "deezer"
WEEKS = 8
K = 3          # a user stays active while at least 3 friends are active
BUDGET = 5     # number of influencer contracts the campaign can afford
SCALE = 0.35   # stand-in scale so the example runs in a few seconds
CHURN = (40, 80)  # friendships made/broken per week: a fast-moving audience


def main() -> None:
    evolving = load_dataset(DATASET, num_snapshots=WEEKS, scale=SCALE, seed=21, edge_churn=CHURN)
    problem = AVTProblem(evolving, k=K, budget=BUDGET, name=DATASET)

    print(f"Advertising campaign on the {DATASET} stand-in "
          f"({evolving.base.num_vertices} users, {evolving.base.num_edges} friendships)")
    print(f"Engagement model: k = {K}; budget: {BUDGET} anchored influencers per week")
    print()

    tracked = IncAVTTracker().track(problem)
    static_anchors = tracked.snapshots[0].anchors

    print(f"{'week':>4} | {'static reach':>13} | {'tracked reach':>13} | tracked anchors")
    print("-" * 72)
    total_static = 0
    total_tracked = 0
    for week, (snapshot, graph) in enumerate(zip(tracked, evolving.snapshots()), start=1):
        static_reach = len(anchored_k_core(graph, K, static_anchors))
        tracked_reach = snapshot.result.anchored_core_size
        total_static += static_reach
        total_tracked += tracked_reach
        anchors = ", ".join(str(anchor) for anchor in sorted(snapshot.anchors, key=repr))
        print(f"{week:>4} | {static_reach:>13} | {tracked_reach:>13} | {anchors}")

    print("-" * 72)
    print(f"Cumulative audience reached: static={total_static}, tracked={total_tracked} "
          f"({100.0 * (total_tracked - total_static) / max(total_static, 1):+.1f}%)")
    print()
    print("Tracking statistics:", tracked.summary())


if __name__ == "__main__":
    main()
