"""Chaos replay: fault injection, supervised retry, degradation and recovery.

The resilience promise of the serving stack is concrete: under injected
worker crashes, slow shards, kernel exceptions and checkpoint corruption,
every query is still answered — bit-identically via retry when the substrate
recovers, or through a counted, observable degradation when it does not.
This example walks the whole ladder on a replayed dataset:

1. arm a deterministic :class:`repro.resilience.FaultSpec` that makes a
   sharded kernel fail mid-exchange (the supervised coordinator resumes the
   exchange and the answer stays bit-identical),
2. arm an unrecoverable fault and watch the engine degrade to the compact
   backend (``engine.health()`` reports the reason) and then *recover* at
   flush time once the fault clears,
3. corrupt a checkpoint's bytes and watch the digest verification name the
   damaged section, then restore from the rotated sibling.

Set ``REPRO_FAULTS`` (see :mod:`repro.resilience.faults`) to replace step
1's demo plan with your own chaos — the CI chaos matrix runs exactly that::

    REPRO_FAULTS="shard.op:action=crash,executor=process,op=hindex_round,at=2" \\
        python examples/chaos_replay.py
"""

from __future__ import annotations

import os

from repro import StreamingAVTEngine, load_dataset
from repro.engine.checkpoint import load_checkpoint, rotated_paths, save_checkpoint
from repro.errors import CheckpointCorruptionError, CheckpointError
from repro.resilience import FaultSpec, faults

DATASET = "eu_core"
K = 4
BUDGET = 3


def replay_under_faults(engine: StreamingAVTEngine, evolving) -> int:
    """Replay every delta with interleaved queries; returns queries answered."""
    answered = 0
    result = engine.query(K, BUDGET)
    answered += 1
    print(
        f"  t=0 anchors={list(result.anchors)} followers={result.num_followers} "
        f"[backend={engine.backend}]"
    )
    for step, delta in enumerate(evolving.deltas, start=1):
        engine.ingest(delta)
        for _ in range(2):
            result = engine.query(K, BUDGET)
            answered += 1
        print(
            f"  t={step} anchors={list(result.anchors)} "
            f"followers={result.num_followers} [backend={engine.backend}]"
        )
    return answered


def main() -> None:
    evolving = load_dataset(DATASET, num_snapshots=3, scale=0.3)

    env_plan = os.environ.get("REPRO_FAULTS")
    if env_plan:
        print(f"Chaos replay with REPRO_FAULTS={env_plan!r}")
        installed = None
    else:
        # Demo plan: the third h-index exchange round raises inside a shard
        # op.  The coordinator restores the consumed payload, resumes the
        # exchange, and the decomposition comes out bit-identical.
        installed = faults.install_plan(
            FaultSpec("shard.op", "error", match={"op": "hindex_round"}, at=3)
        )
        print("Chaos replay with the demo plan (transient shard-op fault):")

    try:
        engine = StreamingAVTEngine(evolving.base, backend="sharded")
        answered = replay_under_faults(engine, evolving)
        health = engine.health()
        print(
            f"replay done: {answered} queries answered, zero errors — "
            f"status={health['status']}, degradations={health['degradations']}"
        )

        # --- unrecoverable fault: the degradation ladder -------------------
        print("\nArming an unrecoverable shard fault (every op fails):")
        with faults.inject(FaultSpec("shard.op", "error", times=0)):
            result = engine.query(K + 1, BUDGET)
        health = engine.health()
        if health["status"] == "degraded":
            print(
                f"  query still answered (anchors={list(result.anchors)}) via "
                f"backend={health['backend']}; health: status=degraded, "
                f"reason={health['degraded']['reason'][:60]!r}"
            )
        else:
            # In-process plans do not reach already-spawned worker processes
            # (arm REPRO_FAULTS before startup for that), so under the
            # process executor this leg can come back healthy.
            print(
                f"  query answered (anchors={list(result.anchors)}) with no "
                f"degradation — the fault plan never reached the substrate"
            )

        # Fault cleared: the next flush probes the failed substrate and
        # migrates back.
        engine.ingest_insert("chaos-u", "chaos-v")
        engine.flush()
        health = engine.health()
        print(
            f"  after flush-time probe: status={health['status']}, "
            f"backend={health['backend']}, recoveries={health['recoveries']}"
        )
    finally:
        if installed is not None:
            faults.clear_plan()

    # --- verified checkpoints ---------------------------------------------
    print("\nCheckpoint verification and fallback:")
    path = "chaos_replay.ckpt"
    try:
        save_checkpoint(engine, path, keep=2)
        save_checkpoint(engine, path, keep=2)
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0xFF  # one flipped bit-pattern mid-file
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        try:
            from repro.engine.checkpoint import read_state

            read_state(path)
        except CheckpointCorruptionError as error:
            print(f"  corruption detected in section {error.section!r}: digest mismatch")
        try:
            restored = load_checkpoint(path, fallback=True)
        except CheckpointError as error:
            # Possible when a persistent checkpoint.bytes fault corrupted
            # every rotation: the load refuses rather than silently
            # restoring damaged state.
            print(f"  every rotation corrupt — restore refused: {error}")
        else:
            match = restored.core_numbers() == engine.core_numbers()
            print(f"  restored from rotated sibling; core numbers match: {match}")
    finally:
        for rotation in rotated_paths(path, 2):
            if os.path.exists(rotation):
                os.unlink(rotation)


if __name__ == "__main__":
    main()
