"""Observability: trace an engine query and read the metrics registry.

Every layer of the library is instrumented with :mod:`repro.obs` spans —
engine queries, warm/cold solves, per-round greedy evaluate/commit, kernel
calls.  Tracing is off by default (each instrumented site costs one flag
check); this example turns it on for a short streaming session and then

1. prints the span tree of the final query — who called what, how long each
   level took, and the attributes the code attached (outcome, candidate
   counts, touched sets);
2. extracts the critical path of the slowest query with
   :func:`repro.obs.critical_path` — the chain of spans that actually gated
   the latency, whose step durations sum to the root's wall time — and the
   per-stack self-time flamegraph aggregation (collapsed-stack format, ready
   for ``flamegraph.pl`` / speedscope);
3. prints the engine's unified metrics snapshot and a derived latency
   percentile, the same ``{name, type, value, labels}`` records that
   ``avt-bench serve-sim --metrics-out`` exports and every ``BENCH_*.json``
   embeds.

The same analyses run offline over an ``avt-bench serve-sim --trace-out``
file via ``avt-bench trace {tree,critical-path,flame,stragglers}``.

Run with::

    python examples/traced_query.py
"""

from __future__ import annotations

from repro import StreamingAVTEngine, load_dataset
from repro.obs import (
    build_span_trees,
    critical_path,
    flame_stacks,
    render_collapsed,
    tracer,
)

K = 3  # engagement degree constraint
BUDGET = 3  # anchors we can afford per answer


def print_span_tree(spans) -> None:
    """Render drained span dicts as an indented tree (children under parents)."""
    children = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)

    def render(span, depth):
        attrs = " ".join(f"{key}={value}" for key, value in sorted(span["attrs"].items()))
        print(f"  {'  ' * depth}{span['name']}  {span['duration'] * 1e3:.3f}ms  {attrs}")
        for child in children.get(span["span_id"], []):
            render(child, depth + 1)

    for root in children.get(None, []):
        render(root, 0)


def main() -> None:
    evolving = load_dataset("gnutella", num_snapshots=4, scale=0.2)
    engine = StreamingAVTEngine(evolving.base)
    engine.query(K, BUDGET)  # cold solve, untraced warm-up
    for delta in evolving.deltas[:-1]:
        engine.ingest(delta)
        engine.query(K, BUDGET)

    # Trace the last delta's worth of work: a flush + warm solve, then a hit.
    engine.ingest(evolving.deltas[-1])
    previous = tracer.set_enabled(True)
    tracer.drain()
    try:
        answer = engine.query(K, BUDGET)  # flush buffered edges, warm refresh
        answer = engine.query(K, BUDGET)  # unchanged version: cache hit
    finally:
        spans = tracer.drain()
        tracer.set_enabled(previous)

    print(f"Traced {len(spans)} spans from two engine queries -> {answer.summary()}")
    print("span tree (duration, attributes):")
    print_span_tree(spans)

    # Critical path of the slowest query: the chain of spans that gated the
    # latency.  Step durations sum to the root's wall time by construction,
    # so nothing is hidden or double-counted.
    slowest = max(build_span_trees(spans), key=lambda root: root.duration)
    steps = critical_path(slowest)
    print()
    print(
        f"critical path through '{slowest.name}' "
        f"({slowest.duration * 1e3:.3f}ms wall):"
    )
    for step in steps:
        share = step.seconds / slowest.duration * 100 if slowest.duration else 0.0
        print(f"  {step.node.name:<28} {step.seconds * 1e3:8.3f}ms  {share:5.1f}%")
    covered = sum(step.seconds for step in steps)
    print(f"  steps sum to {covered * 1e3:.3f}ms of {slowest.duration * 1e3:.3f}ms")

    # Flamegraph aggregation: self time per span-name stack, in the standard
    # collapsed format ('a;b;c <microseconds>').
    print()
    print("flamegraph stacks (collapsed format, self time in us):")
    for line in render_collapsed(flame_stacks(spans)).splitlines():
        print(f"  {line}")

    print()
    print("engine metrics snapshot (unified schema):")
    for entry in engine.stats.snapshot():
        if entry["type"] == "counter" and entry["value"]:
            print(f"  {entry['name']}: {entry['value']}")
    hit_latency = engine.stats.latency_histogram("hit")
    percentiles = hit_latency.percentiles()
    print(
        f"  engine.latency.hit: count={hit_latency.count} "
        f"p50={percentiles['p50'] * 1e3:.3f}ms p99={percentiles['p99'] * 1e3:.3f}ms"
    )
    print(
        "the same snapshot ships via 'avt-bench serve-sim --trace-out/--metrics-out' "
        "and inside every BENCH_*.json"
    )


if __name__ == "__main__":
    main()
