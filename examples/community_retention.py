"""Sustaining a shrinking community: anchored k-core against user churn.

The second motivating application of the paper is sustainability analysis:
when users quietly drop connections, the k-core equilibrium unravels and the
platform loses its engaged community.  This example simulates a community in
decline (each period removes more friendships than it adds) and compares

* the engaged-community size with no intervention,
* a retention program that anchors ``l`` users chosen once at period 1, and
* a retention program that re-selects its anchored users every period
  (anchored vertex tracking).

Run with::

    python examples/community_retention.py
"""

from __future__ import annotations

from repro import AVTProblem, GreedyTracker, IncAVTTracker, k_core
from repro.anchored.followers import anchored_k_core
from repro.graph.generators import chung_lu_graph, perturb_snapshots

PERIODS = 10
K = 4
BUDGET = 6


def build_declining_community():
    """A moderately dense community that loses edges faster than it gains them."""
    base = chung_lu_graph(num_vertices=400, num_edges=1600, skew=1.2, seed=17)
    return perturb_snapshots(
        base,
        num_snapshots=PERIODS,
        removals_per_step=(25, 35),   # heavier churn out ...
        insertions_per_step=(8, 12),  # ... than churn in: the community decays
        seed=18,
    )


def main() -> None:
    evolving = build_declining_community()
    problem = AVTProblem(evolving, k=K, budget=BUDGET, name="declining-community")

    print(f"Community of {evolving.base.num_vertices} users, "
          f"{evolving.base.num_edges} ties, decaying over {PERIODS} periods")
    print(f"Engagement model k = {K}; retention budget l = {BUDGET}")
    print()

    tracked = IncAVTTracker().track(problem)
    baseline_greedy = GreedyTracker().track(problem, max_snapshots=1)
    fixed_anchors = baseline_greedy.snapshots[0].anchors

    print(f"{'period':>6} | {'no anchors':>10} | {'fixed anchors':>13} | {'tracked anchors':>15}")
    print("-" * 56)
    for period, (snapshot, graph) in enumerate(zip(tracked, evolving.snapshots()), start=1):
        unaided = len(k_core(graph, K))
        fixed = len(anchored_k_core(graph, K, fixed_anchors))
        adaptive = snapshot.result.anchored_core_size
        print(f"{period:>6} | {unaided:>10} | {fixed:>13} | {adaptive:>15}")

    final_graph = list(evolving.snapshots())[-1]
    print("-" * 56)
    print(f"After {PERIODS} periods the unaided community keeps {len(k_core(final_graph, K))} "
          f"engaged users; the tracked retention program keeps "
          f"{tracked.snapshots[-1].result.anchored_core_size}.")
    print()
    print("Tracking statistics:", tracked.summary())


if __name__ == "__main__":
    main()
