"""Quickstart: the paper's running example on the 17-user reading community.

Walks through the core concepts on the Figure-1 style toy graph:

1. k-core engagement model (who stays engaged without intervention);
2. anchored k-core (what anchoring a couple of users buys you);
3. the four anchor-selection algorithms on a single snapshot; and
4. anchored vertex tracking across two snapshots of the evolving community.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AVTProblem,
    BruteForceAnchoredKCore,
    GreedyAnchoredKCore,
    IncAVTTracker,
    OLAKAnchoredKCore,
    RCMAnchoredKCore,
    compute_followers,
    core_numbers,
    k_core,
    toy_example_evolving_graph,
    toy_example_graph,
)

K = 3  # a user stays engaged while at least 3 friends stay engaged
BUDGET = 2  # we can afford to persuade (anchor) 2 users per period


def describe_engagement(graph) -> None:
    """Show the baseline engagement equilibrium (the plain 3-core)."""
    core = core_numbers(graph)
    engaged = k_core(graph, K)
    print(f"Users: {graph.num_vertices}, friendships: {graph.num_edges}")
    print(f"Engaged without intervention (3-core): {sorted(engaged)}")
    print(f"Core numbers: {dict(sorted(core.items()))}")
    print()


def compare_single_snapshot(graph) -> None:
    """Run every anchored k-core solver on the first snapshot."""
    print(f"Anchoring users 7 and 10 would retain {sorted(compute_followers(graph, K, {7, 10}))}")
    print()
    print(f"Selecting the best {BUDGET} anchors with each algorithm:")
    for solver_cls in (GreedyAnchoredKCore, OLAKAnchoredKCore, RCMAnchoredKCore, BruteForceAnchoredKCore):
        result = solver_cls(graph, K, BUDGET).select()
        print(f"  {result.summary()}")
    print()


def track_over_time() -> None:
    """Track the anchored users across the two snapshots of the toy community."""
    problem = AVTProblem(toy_example_evolving_graph(), k=K, budget=BUDGET, name="reading-club")
    tracked = IncAVTTracker().track(problem)
    print("Anchored vertex tracking with IncAVT:")
    for snapshot in tracked:
        print(
            f"  t={snapshot.timestamp + 1}: anchors={sorted(snapshot.anchors)} "
            f"followers={sorted(snapshot.result.followers)} "
            f"engaged community size={snapshot.result.anchored_core_size}"
        )
    print()
    print(tracked.summary())


def main() -> None:
    graph = toy_example_graph()
    describe_engagement(graph)
    compare_single_snapshot(graph)
    track_over_time()


if __name__ == "__main__":
    main()
