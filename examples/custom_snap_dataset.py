"""Running the AVT pipeline on your own SNAP-format temporal dataset.

The bundled experiments use synthetic stand-ins because the SNAP datasets
cannot be shipped, but the library reads the real files directly.  This
example shows the full path: it first *writes* a small temporal edge list in
SNAP's ``u v timestamp`` format (pretend it was downloaded), then reads it
back, windows it into snapshots with an inactivity window, and tracks anchors
with every algorithm.

Point ``DATASET_FILE`` at e.g. ``CollegeMsg.txt`` from
https://snap.stanford.edu/data/ to run on real data.

Run with::

    python examples/custom_snap_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import AVTProblem, GreedyTracker, IncAVTTracker, OLAKTracker, RCMTracker
from repro.avt.metrics import summarise
from repro.bench.reporting import format_table
from repro.graph.generators import temporal_edge_stream
from repro.graph.io import read_temporal_snapshots, write_temporal_edge_list

NUM_SNAPSHOTS = 6
INACTIVITY_WINDOW = 80.0   # an edge disappears after this long without activity
K = 3
BUDGET = 3


def fabricate_snap_file(path: Path) -> None:
    """Write a small synthetic interaction log in SNAP's temporal format."""
    events = temporal_edge_stream(
        num_vertices=250, num_events=5000, duration=200.0, activity_skew=1.4, seed=42
    )
    write_temporal_edge_list(events, path)
    print(f"Wrote {len(events)} timestamped interactions to {path}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        dataset_file = Path(tmp) / "interactions.txt"
        fabricate_snap_file(dataset_file)

        snapshots = read_temporal_snapshots(
            dataset_file, num_snapshots=NUM_SNAPSHOTS, inactivity_window=INACTIVITY_WINDOW
        )
        print(
            f"Split into {snapshots.num_snapshots} snapshots; "
            f"edges per snapshot: {[snapshot.num_edges for snapshot in snapshots]}"
        )
        print()

        problem = AVTProblem.from_snapshots(snapshots, k=K, budget=BUDGET, name="custom-snap")
        results = [
            tracker.track(problem)
            for tracker in (OLAKTracker(), GreedyTracker(), IncAVTTracker(), RCMTracker())
        ]
        print(format_table(summarise(results)))
        print()
        best = max(results, key=lambda result: result.total_followers)
        print(f"Most effective tracker: {best.algorithm} "
              f"({best.total_followers} followers across {len(best)} snapshots)")


if __name__ == "__main__":
    main()
