"""Online serving: drive the streaming AVT engine with a live edge stream.

The batch trackers answer "what should the anchors have been at every
snapshot of a finished history".  A production system faces the opposite
shape: edges arrive continuously and anchored k-core queries arrive in
between.  This example replays a bundled dataset's deltas as such a stream:

1. edge events are ingested (batched, opposing pairs coalesced away);
2. queries are answered from the result cache when the graph version allows,
   warm-refreshed from the previous anchor set otherwise;
3. the engine is checkpointed mid-stream and restored into a second process'
   worth of state, resuming without recomputation.

Run with::

    python examples/streaming_engine.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import StreamingAVTEngine, load_dataset

K = 3  # engagement degree constraint
BUDGET = 4  # anchors we can afford per answer


def drive_stream(engine: StreamingAVTEngine, deltas) -> None:
    """Replay the deltas with two queries per step (the second always hits)."""
    for step, delta in enumerate(deltas, start=1):
        engine.ingest(delta)  # buffered; applied on the next query
        answer = engine.query(K, BUDGET)
        repeat = engine.query(K, BUDGET)  # unchanged version: cache hit
        assert repeat is answer
        print(
            f"  t={step}: +{len(delta.inserted)}/-{len(delta.removed)} edges -> "
            f"anchors={list(answer.anchors)} followers={answer.num_followers} "
            f"(version {engine.graph_version})"
        )


def main() -> None:
    evolving = load_dataset("gnutella", num_snapshots=6, scale=0.25)
    print(
        f"Streaming {evolving.total_edge_changes()} edge events from the gnutella "
        f"stand-in (n={evolving.base.num_vertices}, m={evolving.base.num_edges})"
    )

    engine = StreamingAVTEngine(evolving.base, batch_size=32)
    cold = engine.query(K, BUDGET)
    print(f"cold start: {cold.summary()}")
    print()

    drive_stream(engine, evolving.deltas)
    print()

    stats = engine.stats
    print(
        f"served {stats.queries} queries: {stats.cache_hits} cache hits "
        f"({stats.hit_rate:.0%}), {stats.warm_solves} warm refreshes, "
        f"{stats.cold_solves} cold solves"
    )
    print(
        f"warm answers took {stats.mean_latency('warm') * 1e3:.2f}ms vs "
        f"{stats.mean_latency('cold') * 1e3:.2f}ms cold; cache hits "
        f"{stats.mean_latency('hit') * 1e3:.3f}ms"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "engine.ckpt"
        engine.checkpoint(path)
        resumed = StreamingAVTEngine.restore(path)
        original = engine.query(K, BUDGET)
        recovered = resumed.query(K, BUDGET)
        matches = (
            original.anchors == recovered.anchors
            and original.followers == recovered.followers
        )
        print(
            f"checkpoint/restore: {path.stat().st_size} bytes, answer preserved: "
            f"{'yes' if matches else 'NO'}"
        )


if __name__ == "__main__":
    main()
