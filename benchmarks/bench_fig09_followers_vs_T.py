"""Figure 9 — cumulative number of followers as ``T`` grows (effectiveness).

Paper expectation: the follower count found by all four approaches grows
steadily with the number of snapshots and the four curves stay close to each
other — tracking anchors over time is what produces the cumulative benefit.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig09_followers_vs_T


def test_fig09_followers_vs_T(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig09_followers_vs_T(bench_profile), rounds=1, iterations=1
    )
    record_report("fig09_followers_vs_T", report, table.to_csv())

    horizon = max(table.distinct("T"))
    for dataset in table.distinct("dataset"):
        for algorithm in table.distinct("algorithm"):
            rows = sorted(
                table.filter(dataset=dataset, algorithm=algorithm).rows(),
                key=lambda row: row["T"],
            )
            followers = [row["followers"] for row in rows]
            assert followers == sorted(followers)  # cumulative growth
        # Effectiveness stays comparable: every heuristic reaches at least half
        # of the best heuristic's follower count at the full horizon.
        finals = {
            row["algorithm"]: row["followers"]
            for row in table.filter(dataset=dataset, T=horizon).rows()
        }
        best = max(finals.values())
        if best:
            for algorithm, value in finals.items():
                assert value >= 0.5 * best, (dataset, algorithm, finals)
