"""Table 4 — anchors and followers selected at the first snapshot by every solver.

Paper expectation: all five methods (brute force, OLAK, Greedy, IncAVT, RCM)
pick anchor pairs of similar quality at the first snapshot; the exact method's
follower count upper-bounds the others.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table4_anchor_selection


def test_table4_anchor_selection(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_table4_anchor_selection(bench_profile), rounds=1, iterations=1
    )
    record_report("table4_anchor_selection", report, table.to_csv())

    rows = {row["algorithm"]: row for row in table.rows()}
    assert set(rows) == {"Brute-force", "OLAK", "Greedy", "RCM", "IncAVT"}
    optimum = rows["Brute-force"]["num_followers"]
    for algorithm, row in rows.items():
        assert len(row["anchors"]) <= 2
        assert row["num_followers"] <= optimum
    assert rows["Greedy"]["num_followers"] == rows["IncAVT"]["num_followers"]
