"""Ablation — incremental core maintenance vs per-snapshot rebuild (Section 5).

Compares IncAVT as designed (incremental core maintenance plus restricted
candidate pools) against a variant that rebuilds its index and re-solves with
Greedy at every snapshot.  Expectation: on smoothly-evolving data the
incremental variant does far less candidate work for comparable follower
quality, which is exactly the paper's argument for exploiting smoothness.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_ablation_maintenance


def test_ablation_maintenance(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_ablation_maintenance(bench_profile), rounds=1, iterations=1
    )
    record_report("ablation_maintenance", report, table.to_csv())

    incremental = table.filter(algorithm="IncAVT(incremental)").rows()[0]
    rebuild = table.filter(algorithm="IncAVT(rebuild)").rows()[0]
    assert incremental["visited"] <= rebuild["visited"]
    if rebuild["followers"]:
        assert incremental["followers"] >= 0.5 * rebuild["followers"]
