"""Figure 5 — cumulative running time as the number of snapshots ``T`` grows.

Paper expectation: every algorithm's cumulative cost grows with ``T``; IncAVT
grows the slowest on smoothly-evolving datasets because each extra snapshot
only costs a delta-sized update, so its advantage widens as ``T`` increases.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig05_time_vs_T


def test_fig05_time_vs_T(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig05_time_vs_T(bench_profile), rounds=1, iterations=1
    )
    record_report("fig05_time_vs_T", report, table.to_csv())

    # Cumulative series must be non-decreasing in T for every algorithm.
    for dataset in table.distinct("dataset"):
        for algorithm in table.distinct("algorithm"):
            rows = sorted(
                table.filter(dataset=dataset, algorithm=algorithm).rows(),
                key=lambda row: row["T"],
            )
            times = [row["time_s"] for row in rows]
            assert times == sorted(times)

    # On smooth datasets the full-horizon ordering IncAVT < OLAK must hold.
    smooth = {"email_enron", "gnutella", "deezer"}
    horizon = max(table.distinct("T"))
    for dataset in table.distinct("dataset"):
        if dataset not in smooth:
            continue
        olak = table.filter(dataset=dataset, algorithm="OLAK", T=horizon).rows()[0]["time_s"]
        incavt = table.filter(dataset=dataset, algorithm="IncAVT", T=horizon).rows()[0]["time_s"]
        assert incavt < olak
