"""Figure 8 — visited candidate vertices as the anchor budget ``l`` varies.

Paper expectation: the visited-candidate ordering OLAK > Greedy > IncAVT holds
for every budget, with IncAVT's count growing only mildly in ``l``.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig08_visited_vs_l


def test_fig08_visited_vs_l(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig08_visited_vs_l(bench_profile), rounds=1, iterations=1
    )
    record_report("fig08_visited_vs_l", report, table.to_csv())

    for dataset in table.distinct("dataset"):
        for budget in table.distinct("l"):
            rows = {
                row["algorithm"]: row["visited"]
                for row in table.filter(dataset=dataset, l=budget).rows()
            }
            assert rows["OLAK"] >= rows["Greedy"] >= rows["IncAVT"]
