"""Compiled-tier autotune record: numba kernel speedup + calibration table.

Not a paper figure: this certifies the PR-7 compiled tier and the measured
``auto`` policy together.  Two artifacts land in one record
(``benchmarks/results/BENCH_autotune.json``):

* **Kernel-only peel comparison** — the numba packed-heap peel
  (:func:`repro.backends.numba_backend._peel_kernel`) against the numpy
  vectorised peel (:func:`repro.backends.numpy_backend.numpy_peel`) on the
  same 50k-vertex Chung–Lu CSR snapshot, results asserted bit-identical
  (core numbers *and* removal order).  JIT compilation happens once through
  :func:`repro.backends.numba_backend.warmup_kernels` *before* the timed
  sections, exactly as the backend itself does at construction, so the
  recorded numbers are steady-state.  The floor — numba >= 1.5x numpy — is
  enforced only when both tiers are importable and the run is at full size;
  on a machine without numba the comparison is skipped, the reason is
  recorded, and the floor stays unenforced (the kernels would run
  interpreted, which is not the thing the floor certifies).

* **Calibration table** — a full :func:`repro.backends.calibrate.run_calibration`
  sweep (size bands x workload shapes x available backends), with the table
  payload and the per-band winners embedded in the record.  This is the same
  table ``avt-bench calibrate`` emits and ``REPRO_CALIBRATION`` loads.

``AVT_BENCH_AUTOTUNE_VERTICES`` overrides the graph size; the CI smoke job
runs a tiny instance where the floor is recorded but not enforced and the
calibration bands are capped to the same size.
"""

from __future__ import annotations

import os
import time

from repro.backends import backend_availability, numba_available, numpy_available
from repro.backends.calibrate import CalibrationSpec, run_calibration
from repro.bench.compare import floor_failures
from repro.bench.reporting import write_bench_json
from repro.graph.compact import CompactGraph
from repro.graph.generators import chung_lu_graph

DEFAULT_NUM_VERTICES = 50_000
EDGE_FACTOR = 3
SEED = 42
#: Best-of-N timing discipline for the kernel-only sections.
REPETITIONS = 3
#: The floor is enforced at or above this size; smoke runs record only.
SPEEDUP_ENFORCEMENT_FLOOR = 50_000
#: Compiled peel must beat the vectorised numpy peel by this factor.
REQUIRED_NUMBA_PEEL_SPEEDUP = 1.5
#: The embedded calibration sweep times each cell once — the record is about
#: the table's shape and winners; precision sweeps run ``avt-bench calibrate``.
CALIBRATION_REPETITIONS = 1


def _num_vertices() -> int:
    return int(os.environ.get("AVT_BENCH_AUTOTUNE_VERTICES", DEFAULT_NUM_VERTICES))


def _best_of(callable_, repetitions: int = REPETITIONS) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def run_autotune():
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)
    availability = backend_availability()
    have_numpy = numpy_available()
    have_numba = numba_available()

    timings = {}
    results = {}
    if have_numpy:
        import numpy as np

        from repro.backends.numpy_backend import NumpyGraph, numpy_peel

        ngraph = NumpyGraph.from_graph(graph, ordered=True)
        numpy_peel(ngraph)  # untimed warm-up (allocator, import side effects)
        timings["numpy_peel_s"] = _best_of(lambda: numpy_peel(ngraph))
        core_arr, order_ids = numpy_peel(ngraph)
        results["numpy"] = (core_arr.tolist(), list(order_ids))

    if have_numba:
        from repro.backends.numba_backend import _peel_kernel, warmup_kernels

        import numpy as np

        warmup_seconds = warmup_kernels()
        cgraph = CompactGraph.from_graph(graph, ordered=True)
        indptr = np.asarray(cgraph.indptr, dtype=np.int64)
        indices = np.asarray(cgraph.indices, dtype=np.int64)
        is_anchor = np.zeros(cgraph.num_vertices, dtype=np.uint8)
        _peel_kernel(indptr, indices, is_anchor)  # untimed steady-state check
        timings["numba_peel_s"] = _best_of(
            lambda: _peel_kernel(indptr, indices, is_anchor)
        )
        timings["jit_warmup_s"] = warmup_seconds
        core_arr, order_arr = _peel_kernel(indptr, indices, is_anchor)
        results["numba"] = (core_arr.tolist(), order_arr.tolist())

    if "numpy" in results and "numba" in results:
        assert results["numpy"][0] == results["numba"][0], "core numbers diverged"
        assert results["numpy"][1] == results["numba"][1], "removal order diverged"

    speedup = 0.0
    if "numpy_peel_s" in timings and "numba_peel_s" in timings:
        speedup = timings["numpy_peel_s"] / max(timings["numba_peel_s"], 1e-9)
    enforced = (
        have_numba and have_numpy and num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR
    )

    spec = CalibrationSpec(repetitions=CALIBRATION_REPETITIONS).scaled(num_vertices)
    table = run_calibration(spec)
    winners = {
        str(band["name"]): band["winner"] for band in table.bands
    }

    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "kernel": "peel",
        "timings_seconds": timings,
        "numba_peel_speedup_vs_numpy": speedup,
        "results_identical": bool("numpy" in results and "numba" in results),
        "backend_availability": availability,
        "calibration": table.to_payload(),
        "calibration_winners": winners,
        "floors": {
            "numba_peel_speedup_vs_numpy": {
                "value": speedup,
                "floor": REQUIRED_NUMBA_PEEL_SPEEDUP,
                "enforced": enforced,
            },
        },
        "enforcement_note": (
            "floor enforced"
            if enforced
            else (
                f"not enforced: needs numba + numpy importable and "
                f">= {SPEEDUP_ENFORCEMENT_FLOOR} vertices "
                f"(numba: {availability.get('numba') or 'available'}; "
                f"numpy: {availability.get('numpy') or 'available'}; "
                f"{num_vertices} vertices)"
            )
        ),
    }
    compared = (
        f"numpy={timings.get('numpy_peel_s', float('nan')):.4f}s "
        f"numba={timings.get('numba_peel_s', float('nan')):.4f}s -> {speedup:.2f}x"
        if speedup
        else "comparison skipped (" + (availability.get("numba") or "numpy missing") + ")"
    )
    report = (
        f"Autotune on chung_lu(n={graph.num_vertices}, m={graph.num_edges}): "
        f"kernel-only peel {compared} ({payload['enforcement_note']}); "
        f"calibration winners: "
        + ", ".join(f"{band}={winner or '-'}" for band, winner in winners.items())
    )
    return payload, report


def test_autotune(benchmark, results_dir, record_report):
    payload, report = benchmark.pedantic(run_autotune, rounds=1, iterations=1)
    record_report("autotune", report)
    write_bench_json(
        results_dir / "BENCH_autotune.json",
        "autotune",
        payload,
        backend="numba+numpy" if payload["results_identical"] else "numpy",
    )
    assert not floor_failures(payload), floor_failures(payload)
