"""Figure 12 — case study: followers per snapshot vs the brute-force optimum.

Paper setting: eu-core with ``l = 2`` and ``k = 3``.  Expectation: the
approximate algorithms (OLAK, Greedy, IncAVT, RCM) report follower counts very
close to the exact brute-force result at every snapshot, while brute force is
orders of magnitude slower.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig12_case_study


def test_fig12_case_study(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig12_case_study(bench_profile), rounds=1, iterations=1
    )
    record_report("fig12_case_study", report, table.to_csv())

    rows = {row["algorithm"]: row for row in table.rows()}
    brute = rows["Brute-force"]
    # Brute force is per-snapshot optimal, so no heuristic can beat it anywhere.
    for algorithm in ("OLAK", "Greedy", "IncAVT", "RCM"):
        for heuristic_value, optimal_value in zip(
            rows[algorithm]["followers_series"], brute["followers_series"]
        ):
            assert heuristic_value <= optimal_value
    # ... and the exhaustive greedy heuristics land close to the optimum overall.
    if brute["followers"]:
        assert rows["Greedy"]["followers"] >= 0.6 * brute["followers"]
    # The exact method pays for optimality with far more work.
    assert brute["time_s"] >= rows["Greedy"]["time_s"]
