"""Figure 7 — running time as the anchor budget ``l`` varies.

Paper expectation: IncAVT stays significantly cheaper than OLAK and Greedy for
every budget on the smooth datasets (the paper reports ~36x over Greedy and
~230x over OLAK on Gnutella in C++; the pure-Python gap is smaller but the
ordering is the same).
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig07_time_vs_l


def test_fig07_time_vs_l(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig07_time_vs_l(bench_profile), rounds=1, iterations=1
    )
    record_report("fig07_time_vs_l", report, table.to_csv())

    smooth = {"email_enron", "gnutella", "deezer"}
    for dataset in table.distinct("dataset"):
        if dataset not in smooth:
            continue
        for budget in table.distinct("l"):
            olak = table.filter(dataset=dataset, algorithm="OLAK", l=budget).rows()[0]["time_s"]
            incavt = table.filter(dataset=dataset, algorithm="IncAVT", l=budget).rows()[0]["time_s"]
            assert incavt < olak
