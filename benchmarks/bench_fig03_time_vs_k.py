"""Figure 3 — running time of OLAK, Greedy, IncAVT and RCM as ``k`` varies.

Paper expectation: IncAVT is one to two orders of magnitude faster than the
other approaches on the smoothly-evolving (perturbation-based) datasets, the
optimised Greedy beats OLAK everywhere, and no consistent trend appears as a
function of ``k``.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig03_time_vs_k


def test_fig03_time_vs_k(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig03_time_vs_k(bench_profile), rounds=1, iterations=1
    )
    record_report("fig03_time_vs_k", report, table.to_csv())

    # Shape check: on every perturbation-based (smooth) dataset the incremental
    # tracker must beat the per-snapshot OLAK baseline overall.
    smooth = {"email_enron", "gnutella", "deezer"}
    for dataset in table.distinct("dataset"):
        if dataset not in smooth:
            continue
        olak = sum(row["time_s"] for row in table.filter(dataset=dataset, algorithm="OLAK"))
        incavt = sum(row["time_s"] for row in table.filter(dataset=dataset, algorithm="IncAVT"))
        assert incavt < olak, f"IncAVT should be faster than OLAK on {dataset}"
