"""Engine throughput — warm vs cold query latency and sustained updates/sec.

Not a paper figure: this measures the online serving subsystem.  The replay
feeds every dataset delta through the ingest buffer and interleaves three
kinds of queries — cold (fresh engine, static solver), warm (IncAVT refresh
of the carried-forward anchors) and cache hits (unchanged graph version).
Expectation: hits are orders of magnitude cheaper than warm, warm is
substantially cheaper than cold, and update throughput stays in the tens of
thousands of edge events per second even in pure Python.
"""

from __future__ import annotations

import time

from repro.bench.reporting import format_table, write_bench_json
from repro.bench.workloads import build_problem
from repro.engine import StreamingAVTEngine

DATASET = "gnutella"
BUDGET = 4


def run_replay(bench_profile):
    problem = build_problem(
        DATASET,
        budget=BUDGET,
        num_snapshots=bench_profile.num_snapshots,
        scale=bench_profile.scale,
        seed=bench_profile.seed,
    )
    evolving = problem.evolving_graph

    # Cold baseline: a fresh engine per query, so every answer is a full solve.
    cold_engine = StreamingAVTEngine(evolving.base, warm_queries=False)
    started = time.perf_counter()
    cold_engine.query(problem.k, problem.budget)
    cold_seconds = time.perf_counter() - started

    # Streaming run: replay every delta with a warm query and a repeat (hit).
    engine = StreamingAVTEngine(evolving.base)
    engine.query(problem.k, problem.budget)
    for delta in evolving.deltas:
        engine.ingest(delta)
        engine.query(problem.k, problem.budget)
        engine.query(problem.k, problem.budget)
    stats = engine.stats

    rows = [
        {
            "path": "cold (from scratch)",
            "queries": 1,
            "mean_ms": round(cold_seconds * 1e3, 4),
            "speedup_vs_cold": 1.0,
        },
        {
            "path": "warm (IncAVT refresh)",
            "queries": stats.warm_solves,
            "mean_ms": round(stats.mean_latency("warm") * 1e3, 4),
            "speedup_vs_cold": round(
                cold_seconds / max(stats.mean_latency("warm"), 1e-9), 1
            ),
        },
        {
            "path": "cache hit",
            "queries": stats.cache_hits,
            "mean_ms": round(stats.mean_latency("hit") * 1e3, 4),
            "speedup_vs_cold": round(
                cold_seconds / max(stats.mean_latency("hit"), 1e-9), 1
            ),
        },
    ]
    report = "\n".join(
        [
            f"Engine throughput on {DATASET} "
            f"(k={problem.k}, l={problem.budget}, T={problem.num_snapshots}, "
            f"scale={bench_profile.scale})",
            "",
            format_table(rows),
            "",
            f"updates: {stats.edges_inserted + stats.edges_removed} applied in "
            f"{stats.deltas_applied} batches at {stats.updates_per_second:.0f} updates/s",
            f"cache: hit rate {stats.hit_rate:.1%}, promoted={stats.cache_promotions}, "
            f"invalidated={stats.cache_invalidations}",
        ]
    )
    csv_lines = ["path,queries,mean_ms,speedup_vs_cold"]
    csv_lines += [
        f"{row['path']},{row['queries']},{row['mean_ms']:.6f},{row['speedup_vs_cold']:.3f}"
        for row in rows
    ]
    payload = {
        "workload": {
            "dataset": DATASET,
            "k": problem.k,
            "budget": problem.budget,
            "num_snapshots": problem.num_snapshots,
            "scale": bench_profile.scale,
        },
        "latencies": {row["path"]: row for row in rows},
        "updates": {
            "applied": stats.edges_inserted + stats.edges_removed,
            "batches": stats.deltas_applied,
            "updates_per_second": stats.updates_per_second,
        },
        "cache": {
            "hit_rate": stats.hit_rate,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "promotions": stats.cache_promotions,
            "invalidations": stats.cache_invalidations,
        },
        "solves": {"cold": stats.cold_solves, "warm": stats.warm_solves},
        "engine_backend": engine.backend,
    }
    return rows, stats, payload, report, "\n".join(csv_lines) + "\n"


def test_engine_throughput(benchmark, bench_profile, results_dir, record_report):
    rows, stats, payload, report, csv_text = benchmark.pedantic(
        lambda: run_replay(bench_profile), rounds=1, iterations=1
    )
    record_report("engine_throughput", report, csv_text)
    write_bench_json(
        results_dir / "BENCH_engine.json",
        "engine_throughput",
        payload,
        backend=payload["engine_backend"],
    )

    # Shape checks: the whole point of the engine is the latency ladder.
    by_path = {row["path"]: row for row in rows}
    assert stats.cache_hits >= 1
    assert by_path["cache hit"]["mean_ms"] < by_path["cold (from scratch)"]["mean_ms"]
    assert stats.warm_solves > 0
    assert stats.cold_solves >= 1
