"""Observability overhead — the cost of tracing instrumentation, off and on.

Not a paper figure: this guards the tracing layer of :mod:`repro.obs`.  The
engine, the solvers and the kernels are permanently instrumented with
``tracer.span(...)`` call sites; when tracing is disabled each call must cost
one module-flag check plus a no-op context manager.  The benchmark measures

* the per-call cost of a disabled ``span()`` (microbenchmark against an
  empty loop),
* a full engine replay with tracing disabled (the production path), and
* the same replay with tracing enabled (spans buffered and drained), which
  also yields the exact span count of the workload.

The *disabled* overhead of the replay is then estimated as
``span_count * per_call_cost / replay_seconds`` — the fraction of the run
spent in no-op instrumentation.  The acceptance criterion is that this stays
at or below 5%; ``BENCH_obs.json`` records the margin
(``5.0 - overhead_pct``) as an enforced floor at 0 so a regression fails
both the pytest wrapper and the CI ``repro.bench.compare`` sweep.

``test_trace_analysis_bench`` guards the PR-9 analysis tier the same way in
``BENCH_trace.json``: the sampling profiler at 100 hz must keep its measured
sampling work at ≤5% of the profiled window (the end-to-end wall delta is
recorded but too noisy on sub-second legs to enforce), and the critical path
extracted from a traced replay must cover ≥90% of the root span's wall time
(it covers ~100% by construction, so the floor catches a broken
tree/interval reconstruction).
"""

from __future__ import annotations

import time

from repro.bench.compare import floor_failures
from repro.bench.reporting import write_bench_json
from repro.bench.workloads import build_problem
from repro.engine import StreamingAVTEngine
from repro.obs import SamplingProfiler, build_span_trees, critical_path, tracer

DATASET = "gnutella"
BUDGET = 4
MICRO_CALLS = 100_000
OVERHEAD_LIMIT_PCT = 5.0
PROFILER_HZ = 100.0
PROFILER_LIMIT_PCT = 5.0
#: Each measured leg repeats the replay until it is at least this long, so
#: the profiler collects enough samples for a stable overhead estimate.
PROFILER_MIN_REPLAY_SECONDS = 0.3
CRITICAL_PATH_COVERAGE_FLOOR = 0.9


def _noop_span_cost_ns() -> float:
    """Per-call cost of a disabled ``tracer.span(...)`` in nanoseconds."""
    previous = tracer.set_enabled(False)
    try:
        started = time.perf_counter()
        for _ in range(MICRO_CALLS):
            with tracer.span("bench.noop", k=8, budget=4):
                pass
        span_seconds = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(MICRO_CALLS):
            pass
        loop_seconds = time.perf_counter() - started
    finally:
        tracer.set_enabled(previous)
    return max(span_seconds - loop_seconds, 0.0) / MICRO_CALLS * 1e9


def _replay(problem) -> float:
    """One full engine replay (ingest + warm/hit queries); returns seconds."""
    evolving = problem.evolving_graph
    engine = StreamingAVTEngine(evolving.base)
    started = time.perf_counter()
    engine.query(problem.k, problem.budget)
    for delta in evolving.deltas:
        engine.ingest(delta)
        engine.query(problem.k, problem.budget)
        engine.query(problem.k, problem.budget)
    return time.perf_counter() - started


def run_overhead(bench_profile):
    problem = build_problem(
        DATASET,
        budget=BUDGET,
        num_snapshots=bench_profile.num_snapshots,
        scale=bench_profile.scale,
        seed=bench_profile.seed,
    )

    per_call_ns = _noop_span_cost_ns()

    # Production path: tracing disabled.  Best of two runs tames JIT-free
    # Python's warm-up noise (dict caches, allocator).
    previous = tracer.set_enabled(False)
    try:
        disabled_seconds = min(_replay(problem), _replay(problem))
    finally:
        tracer.set_enabled(previous)

    # Enabled run: same workload with spans buffered; the drain yields the
    # exact number of span() call sites the replay crosses.
    previous = tracer.set_enabled(True)
    tracer.drain()
    try:
        enabled_seconds = _replay(problem)
    finally:
        spans = tracer.drain()
        tracer.set_enabled(previous)
    span_count = len(spans)

    overhead_pct = (span_count * per_call_ns * 1e-9) / max(disabled_seconds, 1e-9) * 100.0
    enabled_overhead_pct = (enabled_seconds / max(disabled_seconds, 1e-9) - 1.0) * 100.0

    payload = {
        "workload": {
            "dataset": DATASET,
            "k": problem.k,
            "budget": problem.budget,
            "num_snapshots": problem.num_snapshots,
            "scale": bench_profile.scale,
        },
        "noop_span_ns": per_call_ns,
        "span_count": span_count,
        "replay_seconds": {
            "disabled": disabled_seconds,
            "enabled": enabled_seconds,
        },
        "disabled_overhead_pct": overhead_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "floors": {
            "obs_disabled_overhead_margin_pct": {
                "value": OVERHEAD_LIMIT_PCT - overhead_pct,
                "floor": 0.0,
                "enforced": True,
            },
        },
    }
    report = "\n".join(
        [
            f"Observability overhead on {DATASET} "
            f"(k={problem.k}, l={problem.budget}, T={problem.num_snapshots}, "
            f"scale={bench_profile.scale})",
            "",
            f"noop span() cost:        {per_call_ns:.0f} ns/call",
            f"spans per replay:        {span_count}",
            f"replay (tracing off):    {disabled_seconds * 1e3:.1f} ms",
            f"replay (tracing on):     {enabled_seconds * 1e3:.1f} ms "
            f"({enabled_overhead_pct:+.1f}%)",
            f"disabled overhead:       {overhead_pct:.3f}% of replay "
            f"(limit {OVERHEAD_LIMIT_PCT:.0f}%)",
        ]
    )
    return payload, report


def run_trace_analysis(bench_profile):
    """Profiler-on replay leg + critical-path coverage for BENCH_trace.json."""
    problem = build_problem(
        DATASET,
        budget=BUDGET,
        num_snapshots=bench_profile.num_snapshots,
        scale=bench_profile.scale,
        seed=bench_profile.seed,
    )

    previous = tracer.set_enabled(False)
    try:
        # A single replay is tens of milliseconds at smoke scales — too short
        # for a trustworthy overhead ratio.  Repeat it until each measured leg
        # is long enough that wall-clock noise stays well under the 5% limit.
        single_seconds = _replay(problem)
        repeats = max(
            1, int(PROFILER_MIN_REPLAY_SECONDS / max(single_seconds, 1e-3)) + 1
        )

        def leg() -> float:
            started = time.perf_counter()
            for _ in range(repeats):
                _replay(problem)
            return time.perf_counter() - started

        baseline_seconds = min(leg(), leg())
        profiled = []
        for _ in range(2):
            profiler = SamplingProfiler(hz=PROFILER_HZ)
            with profiler:
                seconds = leg()
            profiled.append((seconds, profiler))
        profiled_seconds, profiler = min(profiled, key=lambda entry: entry[0])
    finally:
        tracer.set_enabled(previous)
    # The enforced overhead is the profiler's measured sampling work as a
    # fraction of the profiled window — the GIL-holding time that actually
    # stalls the workload.  The end-to-end wall delta is recorded too, but
    # run-to-run scheduler noise on sub-second legs swamps a ~1% effect, so
    # it is informational only (same reasoning as the analytic disabled-span
    # floor in run_overhead above).
    profiler_overhead_pct = profiler.overhead_fraction * 100.0
    wall_delta_pct = (profiled_seconds / max(baseline_seconds, 1e-9) - 1.0) * 100.0

    # Traced replay -> critical path of the longest query.  Coverage is ~1.0
    # by construction of the backwards interval walk; the floor guards the
    # tree/interval reconstruction, not the workload.
    previous = tracer.set_enabled(True)
    tracer.drain()
    try:
        _replay(problem)
    finally:
        spans = tracer.drain()
        tracer.set_enabled(previous)
    queries = [
        root for root in build_span_trees(spans) if root.name == "engine.query"
    ]
    longest = max(queries, key=lambda root: root.duration)
    steps = critical_path(longest)
    path_seconds = sum(step.seconds for step in steps)
    coverage = path_seconds / longest.duration if longest.duration else 1.0

    payload = {
        "workload": {
            "dataset": DATASET,
            "k": problem.k,
            "budget": problem.budget,
            "num_snapshots": problem.num_snapshots,
            "scale": bench_profile.scale,
        },
        "profiler": {
            "hz": PROFILER_HZ,
            "samples": profiler.samples,
            "overruns": profiler.overruns,
            "overhead_pct": profiler_overhead_pct,
            "wall_delta_pct": wall_delta_pct,
            "sampling_seconds": profiler.sampling_seconds,
            "replays_per_leg": repeats,
            "replay_seconds": {
                "baseline": baseline_seconds,
                "profiled": profiled_seconds,
            },
        },
        "critical_path": {
            "root": longest.name,
            "wall_seconds": longest.duration,
            "path_seconds": path_seconds,
            "coverage": coverage,
            "steps": len(steps),
            "span_count": len(spans),
        },
        "floors": {
            "profiler_overhead_margin_pct": {
                "value": PROFILER_LIMIT_PCT - profiler_overhead_pct,
                "floor": 0.0,
                "enforced": True,
            },
            "critical_path_coverage": {
                "value": coverage,
                "floor": CRITICAL_PATH_COVERAGE_FLOOR,
                "enforced": True,
            },
        },
    }
    report = "\n".join(
        [
            f"Trace analysis tier on {DATASET} "
            f"(k={problem.k}, l={problem.budget}, T={problem.num_snapshots}, "
            f"scale={bench_profile.scale})",
            "",
            f"replay x{repeats} (no profiler):    {baseline_seconds * 1e3:.1f} ms",
            f"replay x{repeats} (profiler {PROFILER_HZ:.0f}hz): {profiled_seconds * 1e3:.1f} ms "
            f"(wall delta {wall_delta_pct:+.2f}%, {profiler.samples} samples, "
            f"{profiler.overruns} overruns)",
            f"sampling work:           {profiler.sampling_seconds * 1e3:.2f} ms "
            f"= {profiler_overhead_pct:.3f}% of the profiled window "
            f"(limit {PROFILER_LIMIT_PCT:.0f}%)",
            f"critical path:           {path_seconds * 1e3:.1f} ms of "
            f"{longest.duration * 1e3:.1f} ms root wall "
            f"({coverage * 100:.1f}% coverage, {len(steps)} steps)",
        ]
    )
    return payload, report


def test_obs_overhead(benchmark, bench_profile, results_dir, record_report):
    payload, report = benchmark.pedantic(
        lambda: run_overhead(bench_profile), rounds=1, iterations=1
    )
    record_report("obs_overhead", report)
    write_bench_json(results_dir / "BENCH_obs.json", "obs_overhead", payload)

    assert payload["span_count"] > 0
    assert floor_failures(payload) == []


def test_trace_analysis_bench(benchmark, bench_profile, results_dir, record_report):
    payload, report = benchmark.pedantic(
        lambda: run_trace_analysis(bench_profile), rounds=1, iterations=1
    )
    record_report("trace_analysis", report)
    write_bench_json(results_dir / "BENCH_trace.json", "trace_analysis", payload)

    assert payload["profiler"]["samples"] > 0
    assert payload["critical_path"]["coverage"] >= CRITICAL_PATH_COVERAGE_FLOOR
    assert floor_failures(payload) == []
