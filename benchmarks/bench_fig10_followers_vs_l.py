"""Figure 10 — total followers as the anchor budget ``l`` varies.

Paper expectation: more anchors produce more followers for every algorithm,
and the four approaches remain close to one another.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig10_followers_vs_l


def test_fig10_followers_vs_l(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig10_followers_vs_l(bench_profile), rounds=1, iterations=1
    )
    record_report("fig10_followers_vs_l", report, table.to_csv())

    # The exhaustive greedy solvers can only gain followers from extra budget.
    for dataset in table.distinct("dataset"):
        for algorithm in ("Greedy", "OLAK"):
            rows = sorted(
                table.filter(dataset=dataset, algorithm=algorithm).rows(),
                key=lambda row: row["l"],
            )
            followers = [row["followers"] for row in rows]
            assert followers == sorted(followers), (dataset, algorithm, followers)
