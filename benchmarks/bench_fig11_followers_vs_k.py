"""Figure 11 — total followers as ``k`` varies.

Paper expectation: no consistent trend appears when ``k`` varies (the anchored
k-core size depends on the shell structure at each ``k``), and the four
approaches stay close to each other at every ``k``.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig11_followers_vs_k


def test_fig11_followers_vs_k(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig11_followers_vs_k(bench_profile), rounds=1, iterations=1
    )
    record_report("fig11_followers_vs_k", report, table.to_csv())

    # Quality check: for every (dataset, k) cell, OLAK and Greedy agree exactly
    # (both evaluate every useful candidate) and no heuristic collapses to zero
    # while another finds followers.
    for dataset in table.distinct("dataset"):
        for k in table.distinct("k"):
            cell = {
                row["algorithm"]: row["followers"]
                for row in table.filter(dataset=dataset, k=k).rows()
            }
            if not cell:
                continue
            assert cell["Greedy"] == cell["OLAK"], (dataset, k, cell)
