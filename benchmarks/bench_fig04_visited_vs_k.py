"""Figure 4 — visited candidate anchored vertices as ``k`` varies.

Paper expectation: OLAK visits the most candidate vertices, the optimised
Greedy visits fewer thanks to Theorem-3 pruning and shell-local follower
computation, and IncAVT visits the fewest because it only probes the region
each snapshot delta touched.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig04_visited_vs_k


def test_fig04_visited_vs_k(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig04_visited_vs_k(bench_profile), rounds=1, iterations=1
    )
    record_report("fig04_visited_vs_k", report, table.to_csv())

    for dataset in table.distinct("dataset"):
        olak = sum(row["visited"] for row in table.filter(dataset=dataset, algorithm="OLAK"))
        greedy = sum(row["visited"] for row in table.filter(dataset=dataset, algorithm="Greedy"))
        incavt = sum(row["visited"] for row in table.filter(dataset=dataset, algorithm="IncAVT"))
        assert olak > greedy, f"OLAK should visit more candidates than Greedy on {dataset}"
        assert greedy >= incavt, f"Greedy should visit at least as many candidates as IncAVT on {dataset}"
