"""Shared machinery for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper.  The pytest-benchmark fixture measures the end-to-end cost of the
experiment (one round — these are minutes-long sweeps, not microbenchmarks),
and the produced report is both printed and written to
``benchmarks/results/<experiment>.txt`` so it survives output capturing.

Profiles
--------
The experiments honour ``AVT_BENCH_PROFILE`` (``quick`` by default, ``medium``
or ``full`` for the larger runs recorded in ``EXPERIMENTS.md``) and
``AVT_BENCH_SCALE`` for ad-hoc scale overrides; see
:mod:`repro.bench.experiments`.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import BenchProfile, resolve_profile

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_profile() -> BenchProfile:
    """The active benchmark profile (quick / medium / full)."""
    return resolve_profile()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where the per-experiment text reports are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_report(results_dir: Path):
    """Return a callable that persists an experiment report (and its CSV rows)."""

    def _record(name: str, report: str, csv_text: str = "") -> None:
        (results_dir / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
        if csv_text:
            (results_dir / f"{name}.csv").write_text(csv_text, encoding="utf-8")
        print()
        print(report)

    return _record
