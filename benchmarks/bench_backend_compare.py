"""Backend comparison — dict vs compact vs numpy vs sharded, plus shard scaling.

Not a paper figure: this certifies the execution backends registered in
:mod:`repro.backends`.  A 50k-vertex power-law (Chung–Lu) graph is solved
end-to-end with Greedy on every available backend; all backends must return
byte-identical decompositions (core numbers *and* removal order), k-cores,
anchors and followers.  Perf floors enforced at full size:

* the compact backend must be >= 2x faster than dict end-to-end (the PR 2
  guarantee, unchanged);
* the numpy backend's full peel must be at least as fast as the compact
  backend's (the vectorised kernels may not regress below the flat-int
  kernels they replace); and
* the sharded backend's 4-shard process-pool decomposition (over a prebuilt
  partition, the :class:`AnchoredCoreIndex` refresh hot path) must beat the
  1-shard serial configuration by >= 1.3x — enforced only on machines with
  at least :data:`MIN_CPUS_FOR_SHARD_ENFORCEMENT` usable CPUs, since a
  process pool cannot outrun serial execution without cores to run on (the
  measured ratio is always recorded).

Per-kernel timings (full decomposition, single k-core cascade) are reported
alongside for the perf trajectory.  ``AVT_BENCH_BACKEND_VERTICES`` overrides
the graph size (the CI smoke job runs a tiny instance, where the floors are
not enforced — below the ``auto`` threshold the interning overhead
legitimately dominates).  Results land in
``benchmarks/results/BENCH_backend.json`` plus ``BENCH_numpy.json`` (when
numpy is installed) and ``BENCH_sharded.json`` with the shard-scaling detail.
"""

from __future__ import annotations

import os
import time

from repro.anchored.greedy import GreedyAnchoredKCore
from repro.backends import numpy_available
from repro.backends.sharded_backend import ShardedBackend
from repro.bench.reporting import format_table, write_bench_json
from repro.cores.decomposition import core_decomposition, k_core
from repro.graph.compact import CompactGraph
from repro.graph.generators import chung_lu_graph
from repro.shard.coordinator import ShardCoordinator
from repro.shard.partition import partition_compact_graph

DEFAULT_NUM_VERTICES = 50_000
EDGE_FACTOR = 3
K = 4
BUDGET = 2
SEED = 42

#: The perf floors are enforced at or above this size; tiny smoke runs only
#: check result equivalence.
SPEEDUP_ENFORCEMENT_FLOOR = 50_000
REQUIRED_COMPACT_SPEEDUP = 2.0
#: numpy peel time must satisfy ``compact_s / numpy_s >= 1.0``.
REQUIRED_NUMPY_PEEL_RATIO = 1.0
#: 4-shard process-pool decompose must beat 1-shard serial by this factor...
REQUIRED_SHARDED_SPEEDUP = 1.3
#: ...but only on machines that actually have cores for the workers.
MIN_CPUS_FOR_SHARD_ENFORCEMENT = 4
SHARD_COUNT = 4


def _num_vertices() -> int:
    return int(os.environ.get("AVT_BENCH_BACKEND_VERTICES", DEFAULT_NUM_VERTICES))


def run_compare():
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)
    backends = ["dict", "compact"] + (["numpy"] if numpy_available() else [])
    backends.append("sharded")
    # Explicit instances pin the sharded configuration against ambient
    # REPRO_SHARD_* environment settings.
    backend_args = {name: name for name in backends}
    backend_args["sharded"] = ShardedBackend(num_shards=SHARD_COUNT, executor="serial")
    if "numpy" in backends:
        # Touch the numpy kernels once so first-call import/allocator warmup
        # does not pollute the timed sections.
        core_decomposition(chung_lu_graph(64, 128, seed=7), backend="numpy")

    timings = {}
    results = {}
    for backend in backends:
        backend_arg = backend_args[backend]
        started = time.perf_counter()
        decomposition = core_decomposition(graph, backend=backend_arg)
        decomposition_seconds = time.perf_counter() - started

        started = time.perf_counter()
        core_members = k_core(graph, K, backend=backend_arg)
        k_core_seconds = time.perf_counter() - started

        started = time.perf_counter()
        outcome = GreedyAnchoredKCore(graph, K, BUDGET, backend=backend_arg).select()
        greedy_seconds = time.perf_counter() - started

        timings[backend] = {
            "decomposition_s": decomposition_seconds,
            "k_core_s": k_core_seconds,
            "greedy_end_to_end_s": greedy_seconds,
        }
        results[backend] = (decomposition, core_members, outcome)

    dict_decomposition, dict_core, dict_outcome = results["dict"]
    for backend in backends[1:]:
        other_decomposition, other_core, other_outcome = results[backend]
        assert dict(dict_decomposition.core) == dict(other_decomposition.core), backend
        assert dict_decomposition.order == other_decomposition.order, backend
        assert dict_core == other_core, backend
        assert dict_outcome.anchors == other_outcome.anchors, backend
        assert dict_outcome.followers == other_outcome.followers, backend
        assert dict_outcome.anchored_core_size == other_outcome.anchored_core_size, backend

    stages = ("decomposition_s", "k_core_s", "greedy_end_to_end_s")
    speedups = {
        backend: {
            stage: timings["dict"][stage] / max(timings[backend][stage], 1e-9)
            for stage in stages
        }
        for backend in backends[1:]
    }
    rows = []
    for stage in stages:
        row = {"stage": stage}
        for backend in backends:
            row[f"{backend}_s"] = round(timings[backend][stage], 4)
        for backend in backends[1:]:
            row[f"{backend}_speedup"] = round(speedups[backend][stage], 2)
        rows.append(row)
    report = "\n".join(
        [
            f"Backend comparison on a Chung-Lu power-law graph "
            f"(n={graph.num_vertices}, m={graph.num_edges}, k={K}, l={BUDGET}; "
            f"backends: {', '.join(backends)})",
            "",
            format_table(rows),
            "",
            f"Greedy results identical across backends: anchors={dict_outcome.anchors}, "
            f"followers={len(dict_outcome.followers)}",
        ]
    )
    header = ["stage"] + [f"{backend}_s" for backend in backends] + [
        f"{backend}_speedup" for backend in backends[1:]
    ]
    csv_lines = [",".join(header)]
    csv_lines += [
        ",".join(str(row.get(column, "")) for column in header) for row in rows
    ]
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "workload": {"k": K, "budget": BUDGET, "solver": "greedy"},
        "backends": backends,
        "timings_seconds": timings,
        "speedups_vs_dict": speedups,
        "greedy_followers": len(dict_outcome.followers),
        "results_identical": True,
    }
    return payload, timings, report, "\n".join(csv_lines) + "\n", graph.num_vertices


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_sharded_scaling():
    """Shard scaling: 1-shard serial vs 4-shard process-pool decomposition.

    Times :meth:`ShardCoordinator.decompose` over prebuilt partitions — the
    hot path an :class:`AnchoredCoreIndex` refresh takes once per committed
    anchor, where the partition cost is amortised across refreshes.
    """
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    serial = ShardCoordinator(partition_compact_graph(cgraph, 1), executor="serial")
    pooled = ShardCoordinator(
        partition_compact_graph(cgraph, SHARD_COUNT),
        executor="process",
        max_workers=SHARD_COUNT,
    )
    # Untimed warm-up: spawns the worker interpreters and faults in every
    # code path, so the timed sections measure steady-state decompositions.
    pooled.decompose()
    serial.decompose()

    started = time.perf_counter()
    core_serial, order_serial = serial.decompose()
    serial_seconds = time.perf_counter() - started
    # The coordinator's counters are cumulative; diff around the timed call
    # so the record reports the cost of exactly one decomposition.
    rounds_before, messages_before = pooled.rounds, pooled.messages
    started = time.perf_counter()
    core_pooled, order_pooled = pooled.decompose()
    pooled_seconds = time.perf_counter() - started
    assert core_serial == core_pooled
    assert order_serial == order_pooled
    rounds = pooled.rounds - rounds_before
    messages = pooled.messages - messages_before
    pooled.close()

    speedup = serial_seconds / max(pooled_seconds, 1e-9)
    cpus = _usable_cpus()
    enforced = (
        num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR
        and cpus >= MIN_CPUS_FOR_SHARD_ENFORCEMENT
    )
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "configurations": {
            "serial": {"num_shards": 1, "executor": "serial"},
            "pooled": {
                "num_shards": SHARD_COUNT,
                "executor": "process",
                "num_workers": SHARD_COUNT,
            },
        },
        "decompose_seconds": {"serial": serial_seconds, "pooled": pooled_seconds},
        "pooled_speedup_vs_serial": speedup,
        "required_speedup": REQUIRED_SHARDED_SPEEDUP,
        "exchange": {"rounds": rounds, "messages": messages},
        "usable_cpus": cpus,
        "enforced": enforced,
        "enforcement_note": (
            "floor enforced"
            if enforced
            else (
                f"not enforced: needs >= {SPEEDUP_ENFORCEMENT_FLOOR} vertices "
                f"and >= {MIN_CPUS_FOR_SHARD_ENFORCEMENT} usable CPUs "
                f"(have {num_vertices} vertices, {cpus} CPUs)"
            )
        ),
        "results_identical": True,
    }
    report = (
        f"Sharded scaling on chung_lu(n={graph.num_vertices}, m={graph.num_edges}): "
        f"decompose serial(1 shard)={serial_seconds:.3f}s "
        f"pooled({SHARD_COUNT} shards, {SHARD_COUNT} workers)={pooled_seconds:.3f}s "
        f"-> {speedup:.2f}x ({payload['enforcement_note']}; "
        f"rounds={rounds}, boundary messages={messages})"
    )
    return payload, speedup, enforced, report


def test_backend_compare(benchmark, results_dir, record_report):
    payload, timings, report, csv_text, num_vertices = benchmark.pedantic(
        run_compare, rounds=1, iterations=1
    )
    record_report("backend_compare", report, csv_text)
    write_bench_json(
        results_dir / "BENCH_backend.json",
        "backend_compare",
        payload,
        backend="+".join(payload["backends"]),
        num_shards=SHARD_COUNT,
    )

    # Computed once and reused by both the JSON artifact and the enforcement
    # assert so the recorded ratio and the enforced ratio can never diverge.
    numpy_peel_ratio = None
    if "numpy" in timings:
        numpy_peel_ratio = timings["compact"]["decomposition_s"] / max(
            timings["numpy"]["decomposition_s"], 1e-9
        )
        write_bench_json(
            results_dir / "BENCH_numpy.json",
            "numpy_backend",
            {
                "graph": payload["graph"],
                "workload": payload["workload"],
                "timings_seconds": {
                    "compact": timings["compact"],
                    "numpy": timings["numpy"],
                },
                "peel_ratio_compact_over_numpy": numpy_peel_ratio,
                "required_peel_ratio": REQUIRED_NUMPY_PEEL_RATIO,
                "enforced": num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR,
            },
            backend="numpy",
        )

    if num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR:
        compact_speedup = timings["dict"]["greedy_end_to_end_s"] / max(
            timings["compact"]["greedy_end_to_end_s"], 1e-9
        )
        assert compact_speedup >= REQUIRED_COMPACT_SPEEDUP, (
            f"compact backend must be >= {REQUIRED_COMPACT_SPEEDUP}x faster end-to-end, "
            f"got {compact_speedup:.2f}x"
        )
        if numpy_peel_ratio is not None:
            assert numpy_peel_ratio >= REQUIRED_NUMPY_PEEL_RATIO, (
                f"numpy peel must not be slower than compact "
                f"(ratio {numpy_peel_ratio:.2f} < {REQUIRED_NUMPY_PEEL_RATIO})"
            )


def test_sharded_scaling(benchmark, results_dir, record_report):
    payload, speedup, enforced, report = benchmark.pedantic(
        run_sharded_scaling, rounds=1, iterations=1
    )
    record_report("sharded_scaling", report)
    write_bench_json(
        results_dir / "BENCH_sharded.json",
        "sharded_scaling",
        payload,
        backend="sharded",
        num_shards=SHARD_COUNT,
        num_workers=SHARD_COUNT,
    )
    if enforced:
        assert speedup >= REQUIRED_SHARDED_SPEEDUP, (
            f"4-shard process-pool decompose must be >= "
            f"{REQUIRED_SHARDED_SPEEDUP}x faster than 1-shard serial, "
            f"got {speedup:.2f}x"
        )
