"""Backend comparison — dict vs compact kernels, end-to-end and per-kernel.

Not a paper figure: this certifies the compact integer-ID backend
(:mod:`repro.graph.compact`).  A 50k-vertex power-law (Chung–Lu) graph is
solved end-to-end with Greedy on both backends; the compact backend must be
at least 2x faster while returning byte-identical anchors and followers.
Per-kernel timings (full decomposition, single k-core cascade) are reported
alongside for the perf trajectory.

``AVT_BENCH_BACKEND_VERTICES`` overrides the graph size (the CI smoke job
runs a tiny instance, where the speedup floor is not enforced — below the
``auto`` threshold the interning overhead legitimately dominates).  Results
land in ``benchmarks/results/BENCH_backend.json``.
"""

from __future__ import annotations

import os
import time

from repro.anchored.greedy import GreedyAnchoredKCore
from repro.bench.reporting import format_table, write_bench_json
from repro.cores.decomposition import core_decomposition, k_core
from repro.graph.generators import chung_lu_graph

DEFAULT_NUM_VERTICES = 50_000
EDGE_FACTOR = 3
K = 4
BUDGET = 2
SEED = 42

#: The >= 2x end-to-end floor is enforced at or above this size; tiny smoke
#: runs only check result equivalence.
SPEEDUP_ENFORCEMENT_FLOOR = 50_000
REQUIRED_SPEEDUP = 2.0


def _num_vertices() -> int:
    return int(os.environ.get("AVT_BENCH_BACKEND_VERTICES", DEFAULT_NUM_VERTICES))


def run_compare():
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)

    timings = {}
    results = {}
    for backend in ("compact", "dict"):
        started = time.perf_counter()
        decomposition = core_decomposition(graph, backend=backend)
        decomposition_seconds = time.perf_counter() - started

        started = time.perf_counter()
        core_members = k_core(graph, K, backend=backend)
        k_core_seconds = time.perf_counter() - started

        started = time.perf_counter()
        outcome = GreedyAnchoredKCore(graph, K, BUDGET, backend=backend).select()
        greedy_seconds = time.perf_counter() - started

        timings[backend] = {
            "decomposition_s": decomposition_seconds,
            "k_core_s": k_core_seconds,
            "greedy_end_to_end_s": greedy_seconds,
        }
        results[backend] = (decomposition, core_members, outcome)

    dict_decomposition, dict_core, dict_outcome = results["dict"]
    compact_decomposition, compact_core, compact_outcome = results["compact"]
    assert dict(dict_decomposition.core) == dict(compact_decomposition.core)
    assert dict_decomposition.order == compact_decomposition.order
    assert dict_core == compact_core
    assert dict_outcome.anchors == compact_outcome.anchors
    assert dict_outcome.followers == compact_outcome.followers
    assert dict_outcome.anchored_core_size == compact_outcome.anchored_core_size

    speedups = {
        stage: timings["dict"][stage] / max(timings["compact"][stage], 1e-9)
        for stage in timings["dict"]
    }
    rows = [
        {
            "stage": stage,
            "dict_s": round(timings["dict"][stage], 4),
            "compact_s": round(timings["compact"][stage], 4),
            "speedup": round(speedups[stage], 2),
        }
        for stage in ("decomposition_s", "k_core_s", "greedy_end_to_end_s")
    ]
    report = "\n".join(
        [
            f"Backend comparison on a Chung-Lu power-law graph "
            f"(n={graph.num_vertices}, m={graph.num_edges}, k={K}, l={BUDGET})",
            "",
            format_table(rows),
            "",
            f"Greedy results identical across backends: anchors={dict_outcome.anchors}, "
            f"followers={len(dict_outcome.followers)}",
        ]
    )
    csv_lines = ["stage,dict_s,compact_s,speedup"]
    csv_lines += [
        f"{row['stage']},{row['dict_s']:.6f},{row['compact_s']:.6f},{row['speedup']:.3f}"
        for row in rows
    ]
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "workload": {"k": K, "budget": BUDGET, "solver": "greedy"},
        "timings_seconds": timings,
        "speedups": speedups,
        "greedy_followers": len(dict_outcome.followers),
        "results_identical": True,
    }
    return payload, speedups, report, "\n".join(csv_lines) + "\n", graph.num_vertices


def test_backend_compare(benchmark, results_dir, record_report):
    payload, speedups, report, csv_text, num_vertices = benchmark.pedantic(
        run_compare, rounds=1, iterations=1
    )
    record_report("backend_compare", report, csv_text)
    write_bench_json(results_dir / "BENCH_backend.json", "backend_compare", payload)

    if num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR:
        assert speedups["greedy_end_to_end_s"] >= REQUIRED_SPEEDUP, (
            f"compact backend must be >= {REQUIRED_SPEEDUP}x faster end-to-end, "
            f"got {speedups['greedy_end_to_end_s']:.2f}x"
        )
