"""Backend comparison — dict vs compact vs numpy vs sharded, plus shard scaling.

Not a paper figure: this certifies the execution backends registered in
:mod:`repro.backends`.  A 50k-vertex power-law (Chung–Lu) graph is solved
end-to-end with Greedy on every available backend; all backends must return
byte-identical decompositions (core numbers *and* removal order), k-cores,
anchors and followers.  Perf floors enforced at full size:

* the compact backend must be >= 1.8x faster than dict end-to-end (the PR 2
  floor was 2x; PR 5's memoized gains speed the dict baseline up as well —
  the cascades memoization removes were the dict backend's most
  disproportionate cost — so the honest spread on the default path
  compressed and the floor follows it);
* the numpy backend's full peel must be at least as fast as the compact
  backend's (the vectorised kernels may not regress below the flat-int
  kernels they replace); and
* the sharded backend's 4-shard process-pool decomposition (over a prebuilt
  partition, the :class:`AnchoredCoreIndex` refresh hot path, running the
  default async exchange + shared-memory states) must beat the 1-shard
  serial configuration by >= 1.3x — enforced only on machines with at least
  :data:`MIN_CPUS_FOR_SHARD_ENFORCEMENT` usable CPUs, since a process pool
  cannot outrun serial execution without cores to run on (the measured
  ratio is always recorded);
* the async futures-based exchange must beat the PR-4 lock-step rounds on
  the same 4-shard process-pool decompose by >= 1.2x (same CPU gate — with
  one core the scheduling freedom has nothing to schedule onto); and
* the community partitioner must cut boundary edges by >= 2x vs hash on a
  planted-community graph — a deterministic structural property, so this
  floor is enforced even in the CI smoke run — with decompositions staying
  bit-identical across partitioners, exchanges and executors.

* the incremental Greedy (delta-refresh ``commit_anchor`` + memoized gains,
  the PR-5 subsystem) must beat the full-recompute Greedy end-to-end on the
  compact backend by >= 2x at budget 8, with bit-identical anchors,
  followers and instrumentation counters.

Per-kernel timings (full decomposition, single k-core cascade) are reported
alongside for the perf trajectory.  ``AVT_BENCH_BACKEND_VERTICES`` overrides
the graph size (the CI smoke job runs a tiny instance, where the floors are
not enforced — below the ``auto`` threshold the interning overhead
legitimately dominates).  Results land in
``benchmarks/results/BENCH_backend.json`` plus ``BENCH_numpy.json`` (when
numpy is installed), ``BENCH_sharded.json`` with the shard-scaling detail
and ``BENCH_incremental.json`` with the incremental-vs-full Greedy record
(per-round commit latency, candidate re-evaluation counts, shard cache hit
rate).  Every record carries a ``floors`` block enforced both here and by
``python -m repro.bench.compare`` in CI, so a recorded speedup regressing
below its floor fails loudly.
"""

from __future__ import annotations

import os
import time

from repro.anchored.anchored_core import AnchoredCoreIndex
from repro.anchored.greedy import GreedyAnchoredKCore
from repro.backends import numpy_available
from repro.backends.sharded_backend import ShardedBackend
from repro.bench.compare import floor_failures
from repro.bench.reporting import format_table, write_bench_json
from repro.cores.decomposition import core_decomposition, k_core
from repro.graph.compact import CompactGraph
from repro.graph.generators import chung_lu_graph, planted_community_graph
from repro.shard.coordinator import EXCHANGE_LOCKSTEP, ShardCoordinator
from repro.shard.partition import partition_compact_graph

DEFAULT_NUM_VERTICES = 50_000
EDGE_FACTOR = 3
K = 4
BUDGET = 2
SEED = 42

#: The perf floors are enforced at or above this size; tiny smoke runs only
#: check result equivalence.
SPEEDUP_ENFORCEMENT_FLOOR = 50_000
#: PR 2 enforced 2x against the pre-memoization dict Greedy; PR 5's gain
#: cache removed the cascades that hurt dict the most, so the default-path
#: spread sits at ~2.1-2.6x and the floor keeps headroom below it.
REQUIRED_COMPACT_SPEEDUP = 1.8
#: numpy peel time must satisfy ``compact_s / numpy_s >= 1.0``.
REQUIRED_NUMPY_PEEL_RATIO = 1.0
#: 4-shard process-pool decompose must beat 1-shard serial by this factor...
REQUIRED_SHARDED_SPEEDUP = 1.3
#: ...but only on machines that actually have cores for the workers.
MIN_CPUS_FOR_SHARD_ENFORCEMENT = 4
SHARD_COUNT = 4
#: The async futures-based exchange must beat the lock-step rounds on the
#: same 4-shard process pool (same vertex/CPU gates as the serial floor).
REQUIRED_ASYNC_SPEEDUP = 1.2
#: The community partitioner must cut boundary edges vs hash by this factor
#: on a planted-community graph.  The ratio is a deterministic structural
#: property of the partition (no timing involved), so it is enforced at
#: every size including the CI smoke run.
REQUIRED_COMMUNITY_CUT_REDUCTION = 2.0
#: The PR-5 guarantee: incremental refresh + memoized gains must beat the
#: full-recompute Greedy end-to-end on the compact backend at this budget.
INCREMENTAL_BUDGET = 8
REQUIRED_INCREMENTAL_SPEEDUP = 2.0


def _num_vertices() -> int:
    return int(os.environ.get("AVT_BENCH_BACKEND_VERTICES", DEFAULT_NUM_VERTICES))


def run_compare():
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)
    backends = ["dict", "compact"] + (["numpy"] if numpy_available() else [])
    backends.append("sharded")
    # Explicit instances pin the sharded configuration against ambient
    # REPRO_SHARD_* environment settings.
    backend_args = {name: name for name in backends}
    backend_args["sharded"] = ShardedBackend(num_shards=SHARD_COUNT, executor="serial")
    if "numpy" in backends:
        # Touch the numpy kernels once so first-call import/allocator warmup
        # does not pollute the timed sections.
        core_decomposition(chung_lu_graph(64, 128, seed=7), backend="numpy")

    timings = {}
    results = {}
    for backend in backends:
        backend_arg = backend_args[backend]
        started = time.perf_counter()
        decomposition = core_decomposition(graph, backend=backend_arg)
        decomposition_seconds = time.perf_counter() - started

        started = time.perf_counter()
        core_members = k_core(graph, K, backend=backend_arg)
        k_core_seconds = time.perf_counter() - started

        started = time.perf_counter()
        outcome = GreedyAnchoredKCore(graph, K, BUDGET, backend=backend_arg).select()
        greedy_seconds = time.perf_counter() - started

        timings[backend] = {
            "decomposition_s": decomposition_seconds,
            "k_core_s": k_core_seconds,
            "greedy_end_to_end_s": greedy_seconds,
        }
        results[backend] = (decomposition, core_members, outcome)

    dict_decomposition, dict_core, dict_outcome = results["dict"]
    for backend in backends[1:]:
        other_decomposition, other_core, other_outcome = results[backend]
        assert dict(dict_decomposition.core) == dict(other_decomposition.core), backend
        assert dict_decomposition.order == other_decomposition.order, backend
        assert dict_core == other_core, backend
        assert dict_outcome.anchors == other_outcome.anchors, backend
        assert dict_outcome.followers == other_outcome.followers, backend
        assert dict_outcome.anchored_core_size == other_outcome.anchored_core_size, backend

    stages = ("decomposition_s", "k_core_s", "greedy_end_to_end_s")
    speedups = {
        backend: {
            stage: timings["dict"][stage] / max(timings[backend][stage], 1e-9)
            for stage in stages
        }
        for backend in backends[1:]
    }
    rows = []
    for stage in stages:
        row = {"stage": stage}
        for backend in backends:
            row[f"{backend}_s"] = round(timings[backend][stage], 4)
        for backend in backends[1:]:
            row[f"{backend}_speedup"] = round(speedups[backend][stage], 2)
        rows.append(row)
    report = "\n".join(
        [
            f"Backend comparison on a Chung-Lu power-law graph "
            f"(n={graph.num_vertices}, m={graph.num_edges}, k={K}, l={BUDGET}; "
            f"backends: {', '.join(backends)})",
            "",
            format_table(rows),
            "",
            f"Greedy results identical across backends: anchors={dict_outcome.anchors}, "
            f"followers={len(dict_outcome.followers)}",
        ]
    )
    header = ["stage"] + [f"{backend}_s" for backend in backends] + [
        f"{backend}_speedup" for backend in backends[1:]
    ]
    csv_lines = [",".join(header)]
    csv_lines += [
        ",".join(str(row.get(column, "")) for column in header) for row in rows
    ]
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "workload": {"k": K, "budget": BUDGET, "solver": "greedy"},
        "backends": backends,
        "timings_seconds": timings,
        "speedups_vs_dict": speedups,
        "greedy_followers": len(dict_outcome.followers),
        "results_identical": True,
        "floors": {
            "compact_greedy_speedup_vs_dict": {
                "value": speedups["compact"]["greedy_end_to_end_s"],
                "floor": REQUIRED_COMPACT_SPEEDUP,
                "enforced": num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR,
            },
        },
    }
    return payload, timings, report, "\n".join(csv_lines) + "\n", graph.num_vertices


def run_incremental_compare():
    """Incremental vs full-recompute Greedy on the compact backend.

    The same selection problem (bit-identical anchors and followers by the
    delta-refresh contract) solved twice: once with ``incremental=False``
    (the PR-4 behaviour — full anchored re-peel per commit, every candidate
    cascaded every round) and once with the default incremental path
    (order-suffix commit splice + memoized gains).  Also replays the chosen
    anchors onto a sharded index to record the shard-local cache hit rate
    the same commit sequence achieves there.
    """
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)

    started = time.perf_counter()
    full = GreedyAnchoredKCore(
        graph, K, INCREMENTAL_BUDGET, backend="compact", incremental=False
    ).select()
    full_seconds = time.perf_counter() - started

    started = time.perf_counter()
    incremental = GreedyAnchoredKCore(
        graph, K, INCREMENTAL_BUDGET, backend="compact", incremental=True
    ).select()
    incremental_seconds = time.perf_counter() - started

    assert full.anchors == incremental.anchors
    assert full.followers == incremental.followers
    assert full.anchored_core_size == incremental.anchored_core_size
    assert full.stats.candidates_evaluated == incremental.stats.candidates_evaluated
    assert full.stats.visited_vertices == incremental.stats.visited_vertices

    # Shard-local result caching: replay the identical commit sequence on a
    # sharded index and read the coordinator's cache counters.
    sharded = ShardedBackend(num_shards=SHARD_COUNT, executor="serial")
    index = AnchoredCoreIndex(graph, K, backend=sharded)
    for anchor in incremental.anchors:
        index.commit_anchor(anchor)
    shard_stats = index.kernel.coordinator.stats()
    shard_lookups = shard_stats["shard_cache_hits"] + shard_stats["shard_cache_misses"]
    shard_hit_rate = shard_stats["shard_cache_hits"] / max(shard_lookups, 1)

    speedup = full_seconds / max(incremental_seconds, 1e-9)
    evaluated = incremental.stats.candidates_evaluated
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "workload": {
            "k": K,
            "budget": INCREMENTAL_BUDGET,
            "solver": "greedy",
            "backend": "compact",
        },
        "greedy_seconds": {
            "full_recompute": full_seconds,
            "incremental": incremental_seconds,
        },
        "incremental_speedup": speedup,
        "per_round_commit_seconds": {
            "full_recompute": full.stats.commit_seconds,
            "incremental": incremental.stats.commit_seconds,
        },
        "candidate_evaluations": {
            "evaluated": evaluated,
            "recomputed_incremental": incremental.stats.candidates_recomputed,
            "cache_hits_incremental": incremental.stats.cache_hits,
            "recomputed_full": full.stats.candidates_recomputed,
        },
        "shard_cache": {
            **shard_stats,
            "num_shards": SHARD_COUNT,
            "refreshes": 1 + len(incremental.anchors),
            "hit_rate": shard_hit_rate,
        },
        "anchors_selected": len(incremental.anchors),
        "followers": len(incremental.followers),
        "results_identical": True,
        "floors": {
            "incremental_greedy_speedup": {
                "value": speedup,
                "floor": REQUIRED_INCREMENTAL_SPEEDUP,
                "enforced": num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR,
            },
        },
    }
    report = (
        f"Incremental vs full-recompute Greedy on chung_lu(n={graph.num_vertices}, "
        f"m={graph.num_edges}, k={K}, l={INCREMENTAL_BUDGET}, compact backend): "
        f"full={full_seconds:.3f}s incremental={incremental_seconds:.3f}s "
        f"-> {speedup:.2f}x (cascades: {evaluated} evaluated, "
        f"{incremental.stats.candidates_recomputed} recomputed, "
        f"{incremental.stats.cache_hits} cache hits; "
        f"shard peel cache hit rate {shard_hit_rate:.2f})"
    )
    return payload, report


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_decompose(coordinator):
    """Time one decompose, diffing the cumulative counters around the call."""
    before = coordinator.stats()
    started = time.perf_counter()
    core, order = coordinator.decompose()
    seconds = time.perf_counter() - started
    after = coordinator.stats()
    counters = {
        name: after[name] - before[name]
        for name in ("rounds", "messages", "exchange_waves", "ops_dispatched")
    }
    return core, order, seconds, counters


def _partition_quality(num_vertices):
    """Community vs hash partitioner on a planted-community graph.

    The cut-edge ratio is a structural property of the partition, fully
    deterministic for a fixed seed, so the reduction floor holds at every
    size.  Decompositions over both plans must match the 1-shard baseline
    bit-for-bit (same cores, same removal order).
    """
    community_size = max(40, min(400, num_vertices // 100))
    clustered = planted_community_graph(
        num_communities=2 * SHARD_COUNT,
        community_size=community_size,
        intra_edge_probability=0.3,
        inter_edges=community_size,
        seed=SEED,
    )
    cgraph = CompactGraph.from_graph(clustered, ordered=True)
    baseline = ShardCoordinator(partition_compact_graph(cgraph, 1)).decompose()
    plans = {
        name: partition_compact_graph(cgraph, SHARD_COUNT, partitioner=name)
        for name in ("hash", "degree_balanced", "community")
    }
    quality = {}
    for name, plan in plans.items():
        assert ShardCoordinator(plan).decompose() == baseline, name
        quality[name] = {
            "cut_edges": plan.cut_edge_count,
            "cut_edge_ratio": plan.cut_edge_ratio,
            "balance": plan.balance,
        }
    reduction = quality["hash"]["cut_edges"] / max(
        quality["community"]["cut_edges"], 1
    )
    stats = {
        "graph": {
            "model": "planted_community",
            "num_vertices": clustered.num_vertices,
            "num_edges": clustered.num_edges,
            "num_communities": 2 * SHARD_COUNT,
            "community_size": community_size,
            "intra_edge_probability": 0.3,
            "inter_edges": community_size,
            "seed": SEED,
        },
        "num_shards": SHARD_COUNT,
        "partitioners": quality,
        "community_cut_reduction_vs_hash": reduction,
    }
    return stats, reduction


def run_sharded_scaling():
    """Shard scaling: serial vs pooled, async vs lock-step, community vs hash.

    Times :meth:`ShardCoordinator.decompose` over prebuilt partitions — the
    hot path an :class:`AnchoredCoreIndex` refresh takes once per committed
    anchor, where the partition cost is amortised across refreshes.  Three
    comparisons feed three floors: the 4-shard process pool (async exchange
    + shared-memory states, the defaults) vs the 1-shard serial baseline;
    the async exchange vs the lock-step rounds on that same pool; and the
    community partitioner's boundary-edge cut vs hash on a clustered graph.
    """
    num_vertices = _num_vertices()
    graph = chung_lu_graph(num_vertices, EDGE_FACTOR * num_vertices, seed=SEED)
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    serial = ShardCoordinator(partition_compact_graph(cgraph, 1), executor="serial")
    pooled = ShardCoordinator(
        partition_compact_graph(cgraph, SHARD_COUNT),
        executor="process",
        max_workers=SHARD_COUNT,
    )
    lockstep = ShardCoordinator(
        partition_compact_graph(cgraph, SHARD_COUNT),
        executor="process",
        max_workers=SHARD_COUNT,
        exchange=EXCHANGE_LOCKSTEP,
    )
    # Untimed warm-up: spawns the worker interpreters and faults in every
    # code path, so the timed sections measure steady-state decompositions.
    pooled.decompose()
    lockstep.decompose()
    serial.decompose()

    started = time.perf_counter()
    core_serial, order_serial = serial.decompose()
    serial_seconds = time.perf_counter() - started
    core_pooled, order_pooled, pooled_seconds, async_counters = _timed_decompose(
        pooled
    )
    core_lock, order_lock, lockstep_seconds, lockstep_counters = _timed_decompose(
        lockstep
    )
    assert core_serial == core_pooled == core_lock
    assert order_serial == order_pooled == order_lock
    pooled.close()
    lockstep.close()

    speedup = serial_seconds / max(pooled_seconds, 1e-9)
    async_speedup = lockstep_seconds / max(pooled_seconds, 1e-9)
    partition_stats, cut_reduction = _partition_quality(num_vertices)
    cpus = _usable_cpus()
    enforced = (
        num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR
        and cpus >= MIN_CPUS_FOR_SHARD_ENFORCEMENT
    )
    payload = {
        "graph": {
            "model": "chung_lu",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": SEED,
        },
        "configurations": {
            "serial": {"num_shards": 1, "executor": "serial"},
            "pooled": {
                "num_shards": SHARD_COUNT,
                "executor": "process",
                "num_workers": SHARD_COUNT,
                "exchange": "async",
                "shared_memory": True,
            },
            "lockstep": {
                "num_shards": SHARD_COUNT,
                "executor": "process",
                "num_workers": SHARD_COUNT,
                "exchange": "lockstep",
                "shared_memory": True,
            },
        },
        "decompose_seconds": {
            "serial": serial_seconds,
            "pooled": pooled_seconds,
            "lockstep": lockstep_seconds,
        },
        "pooled_speedup_vs_serial": speedup,
        "async_speedup_vs_lockstep": async_speedup,
        "required_speedup": REQUIRED_SHARDED_SPEEDUP,
        "exchange": {"async": async_counters, "lockstep": lockstep_counters},
        "partition_quality": partition_stats,
        "usable_cpus": cpus,
        "enforced": enforced,
        "floors": {
            "sharded_pooled_speedup_vs_serial": {
                "value": speedup,
                "floor": REQUIRED_SHARDED_SPEEDUP,
                "enforced": enforced,
            },
            "sharded_async_speedup_vs_lockstep": {
                "value": async_speedup,
                "floor": REQUIRED_ASYNC_SPEEDUP,
                "enforced": enforced,
            },
            "community_cut_reduction_vs_hash": {
                "value": cut_reduction,
                "floor": REQUIRED_COMMUNITY_CUT_REDUCTION,
                "enforced": True,
            },
        },
        "enforcement_note": (
            "perf floors enforced"
            if enforced
            else (
                f"perf floors not enforced: needs >= {SPEEDUP_ENFORCEMENT_FLOOR} "
                f"vertices and >= {MIN_CPUS_FOR_SHARD_ENFORCEMENT} usable CPUs "
                f"(have {num_vertices} vertices, {cpus} CPUs); the "
                f"community-cut floor is structural and always enforced"
            )
        ),
        "results_identical": True,
    }
    report = (
        f"Sharded scaling on chung_lu(n={graph.num_vertices}, m={graph.num_edges}): "
        f"decompose serial(1 shard)={serial_seconds:.3f}s "
        f"async({SHARD_COUNT} shards, {SHARD_COUNT} workers)={pooled_seconds:.3f}s "
        f"lockstep={lockstep_seconds:.3f}s -> {speedup:.2f}x vs serial, "
        f"{async_speedup:.2f}x vs lockstep ({payload['enforcement_note']}; "
        f"async waves={async_counters['exchange_waves']}, "
        f"messages={async_counters['messages']}); "
        f"community partitioner cuts {cut_reduction:.1f}x fewer boundary edges "
        f"than hash on planted_community"
        f"(n={partition_stats['graph']['num_vertices']})"
    )
    return payload, speedup, enforced, report


def test_backend_compare(benchmark, results_dir, record_report):
    payload, timings, report, csv_text, num_vertices = benchmark.pedantic(
        run_compare, rounds=1, iterations=1
    )
    record_report("backend_compare", report, csv_text)
    write_bench_json(
        results_dir / "BENCH_backend.json",
        "backend_compare",
        payload,
        backend="+".join(payload["backends"]),
        num_shards=SHARD_COUNT,
    )

    # Computed once, recorded in the ``floors`` block and enforced through
    # the same :func:`repro.bench.compare.floor_failures` reader the CI
    # bench-smoke step runs, so the recorded ratio and the enforced ratio
    # can never diverge.
    if "numpy" in timings:
        numpy_peel_ratio = timings["compact"]["decomposition_s"] / max(
            timings["numpy"]["decomposition_s"], 1e-9
        )
        numpy_payload = {
            "graph": payload["graph"],
            "workload": payload["workload"],
            "timings_seconds": {
                "compact": timings["compact"],
                "numpy": timings["numpy"],
            },
            "peel_ratio_compact_over_numpy": numpy_peel_ratio,
            "required_peel_ratio": REQUIRED_NUMPY_PEEL_RATIO,
            "enforced": num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR,
            "floors": {
                "numpy_peel_ratio_vs_compact": {
                    "value": numpy_peel_ratio,
                    "floor": REQUIRED_NUMPY_PEEL_RATIO,
                    "enforced": num_vertices >= SPEEDUP_ENFORCEMENT_FLOOR,
                },
            },
        }
        write_bench_json(
            results_dir / "BENCH_numpy.json",
            "numpy_backend",
            numpy_payload,
            backend="numpy",
        )
        assert not floor_failures(numpy_payload), floor_failures(numpy_payload)

    assert not floor_failures(payload), floor_failures(payload)


def test_sharded_scaling(benchmark, results_dir, record_report):
    payload, speedup, enforced, report = benchmark.pedantic(
        run_sharded_scaling, rounds=1, iterations=1
    )
    record_report("sharded_scaling", report)
    write_bench_json(
        results_dir / "BENCH_sharded.json",
        "sharded_scaling",
        payload,
        backend="sharded",
        num_shards=SHARD_COUNT,
        num_workers=SHARD_COUNT,
    )
    assert not floor_failures(payload), floor_failures(payload)


def test_incremental_compare(benchmark, results_dir, record_report):
    payload, report = benchmark.pedantic(run_incremental_compare, rounds=1, iterations=1)
    record_report("incremental_compare", report)
    write_bench_json(
        results_dir / "BENCH_incremental.json",
        "incremental_refresh",
        payload,
        backend="compact",
        num_shards=SHARD_COUNT,
    )
    assert not floor_failures(payload), floor_failures(payload)
