"""Ablation — Theorem-3 candidate pruning (Section 4.1 design choice).

Compares the optimised Greedy tracker against the same tracker with the
K-order positional pruning disabled.  Expectation: identical follower counts
(pruning is a pure optimisation) with strictly fewer candidate evaluations and
visited vertices when pruning is enabled.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_ablation_pruning


def test_ablation_pruning(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_ablation_pruning(bench_profile), rounds=1, iterations=1
    )
    record_report("ablation_pruning", report, table.to_csv())

    pruned = table.filter(algorithm="Greedy(pruned)").rows()[0]
    unpruned = table.filter(algorithm="Greedy(unpruned)").rows()[0]
    assert pruned["followers"] == unpruned["followers"]
    assert pruned["candidates"] <= unpruned["candidates"]
    assert pruned["visited"] <= unpruned["visited"]
