"""Resilience tier — supervision overhead and fault-recovery latency.

Not a paper figure: this guards the :mod:`repro.resilience` layer.  Every
shard op now dispatches through a ``faults.fire(...)`` injection check and a
``_supervised`` retry wrapper; when no fault plan is armed those must stay
noise-level.  The benchmark measures

* the per-call cost of an unarmed ``faults.fire`` (microbenchmark against an
  empty loop),
* a supervised sharded decompose workload, whose ``ops_dispatched`` counter
  gives the exact number of injection checks crossed, and
* the recovery latency of the three chaos paths: an injected kernel fault
  resumed mid-exchange (serial), a query answered through the engine's
  degradation ladder, and the checkpoint fallback restore after corrupting
  the newest rotation.

The *no-fault* supervision overhead is estimated as
``ops_dispatched * per_call_cost / workload_seconds`` — the fraction of the
sharded workload spent in unarmed injection checks (the same analytic
construction as the disabled-tracing floor in ``bench_obs_overhead.py``,
chosen because end-to-end wall deltas on sub-second legs are dominated by
scheduler noise).  The acceptance criterion is ≤5%; ``BENCH_resilience.json``
records the margin (``5.0 - overhead_pct``) as an enforced floor at 0.
Recovery latencies are recorded for trending but not enforced — they embed
deliberate backoff sleeps.
"""

from __future__ import annotations

import random
import time

from repro.bench.compare import floor_failures
from repro.bench.reporting import write_bench_json
from repro.engine import StreamingAVTEngine, load_checkpoint, save_checkpoint
from repro.graph.compact import CompactGraph
from repro.graph.static import Graph
from repro.resilience import FaultSpec, RetryPolicy, faults
from repro.shard.coordinator import ShardCoordinator
from repro.shard.partition import partition_compact_graph

MICRO_CALLS = 100_000
OVERHEAD_LIMIT_PCT = 5.0
NUM_SHARDS = 3


def _chaos_graph(bench_profile) -> Graph:
    rng = random.Random(bench_profile.seed)
    num_vertices = max(120, int(400 * bench_profile.scale))
    num_edges = num_vertices * 4
    edges = set()
    while len(edges) < num_edges:
        u, v = rng.sample(range(num_vertices), 2)
        edges.add((min(u, v), max(u, v)))
    return Graph(edges=sorted(edges))


def _unarmed_fire_cost_ns() -> float:
    """Per-call cost of ``faults.fire`` with no plan armed, in nanoseconds."""
    faults.clear_plan()
    started = time.perf_counter()
    for _ in range(MICRO_CALLS):
        faults.fire("shard.op", op="bench", shard=0, executor="serial")
    fire_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(MICRO_CALLS):
        pass
    loop_seconds = time.perf_counter() - started
    return max(fire_seconds - loop_seconds, 0.0) / MICRO_CALLS * 1e9


def _make_coordinator(graph: Graph, **kwargs) -> ShardCoordinator:
    cgraph = CompactGraph.from_graph(graph, ordered=True)
    plan = partition_compact_graph(cgraph, NUM_SHARDS, "hash")
    return ShardCoordinator(plan, executor="serial", **kwargs)


def _supervised_workload(graph: Graph):
    """One supervised sharded decompose; returns (seconds, ops_dispatched)."""
    coordinator = _make_coordinator(graph)
    started = time.perf_counter()
    coordinator.decompose([0])
    seconds = time.perf_counter() - started
    ops = coordinator.stats()["ops_dispatched"]
    coordinator.close()
    return seconds, ops


def _fault_resume_latency(graph: Graph) -> dict:
    """Wall cost of one injected mid-exchange fault, beyond the clean run."""
    clean = _make_coordinator(graph, retry=RetryPolicy(max_retries=2, base_delay=0.01))
    started = time.perf_counter()
    expected = clean.decompose([0])
    clean_seconds = time.perf_counter() - started
    clean.close()

    faulted = _make_coordinator(graph, retry=RetryPolicy(max_retries=2, base_delay=0.01))
    with faults.inject(FaultSpec("shard.op", "error", match={"op": "hindex_round"}, at=2)):
        started = time.perf_counter()
        got = faulted.decompose([0])
        faulted_seconds = time.perf_counter() - started
    stats = faulted.stats()
    faulted.close()
    assert got == expected, "fault recovery changed the decomposition"
    return {
        "clean_seconds": clean_seconds,
        "faulted_seconds": faulted_seconds,
        "recovery_seconds": max(faulted_seconds - clean_seconds, 0.0),
        "exchange_resumes": stats["exchange_resumes"],
        "op_retries": stats["op_retries"],
    }


def _degradation_latency(graph: Graph) -> dict:
    """Latency of a query answered through the engine degradation ladder."""
    engine = StreamingAVTEngine(graph, backend="sharded")
    engine.query(4, 2)  # warm construction out of the measured window
    with faults.inject(FaultSpec("shard.op", "error", times=0)):
        started = time.perf_counter()
        engine.query(5, 2)
        degraded_seconds = time.perf_counter() - started
    health = engine.health()
    assert health["status"] == "degraded", "fault never reached the backend"

    # Substrate healthy again: the next flush probes and migrates back.
    engine.ingest_insert("bench-u", "bench-v")
    started = time.perf_counter()
    engine.flush()
    reprobe_seconds = time.perf_counter() - started
    recovered = engine.health()["status"] == "ok"
    return {
        "degraded_query_seconds": degraded_seconds,
        "recovery_flush_seconds": reprobe_seconds,
        "recovered": recovered,
    }


def _checkpoint_fallback_latency(graph: Graph, results_dir) -> dict:
    """Detect-and-fall-back cost for a corrupted newest checkpoint."""
    engine = StreamingAVTEngine(graph)
    engine.query(3, 2)
    path = results_dir / "bench_resilience.ckpt"
    save_checkpoint(engine, path, keep=2)
    save_checkpoint(engine, path, keep=2)

    started = time.perf_counter()
    load_checkpoint(path)
    intact_seconds = time.perf_counter() - started

    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    started = time.perf_counter()
    restored = load_checkpoint(path, fallback=True)
    fallback_seconds = time.perf_counter() - started
    assert restored.to_state()["core"] == engine.to_state()["core"]
    for rotation in (path, path.with_name(path.name + ".1")):
        if rotation.exists():
            rotation.unlink()
    return {
        "intact_restore_seconds": intact_seconds,
        "fallback_restore_seconds": fallback_seconds,
    }


def run_resilience(bench_profile, results_dir):
    graph = _chaos_graph(bench_profile)

    per_call_ns = _unarmed_fire_cost_ns()
    # Best of two tames warm-up noise; ops_dispatched is deterministic.
    (seconds_a, ops), (seconds_b, _) = (
        _supervised_workload(graph),
        _supervised_workload(graph),
    )
    workload_seconds = min(seconds_a, seconds_b)
    overhead_pct = (ops * per_call_ns * 1e-9) / max(workload_seconds, 1e-9) * 100.0

    resume = _fault_resume_latency(graph)
    degradation = _degradation_latency(graph)
    checkpoint = _checkpoint_fallback_latency(graph, results_dir)

    payload = {
        "workload": {
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "num_shards": NUM_SHARDS,
            "scale": bench_profile.scale,
        },
        "unarmed_fire_ns": per_call_ns,
        "ops_dispatched": ops,
        "workload_seconds": workload_seconds,
        "supervision_overhead_pct": overhead_pct,
        "fault_resume": resume,
        "degradation": degradation,
        "checkpoint_fallback": checkpoint,
        "floors": {
            "supervision_overhead_margin_pct": {
                "value": OVERHEAD_LIMIT_PCT - overhead_pct,
                "floor": 0.0,
                "enforced": True,
            },
        },
    }
    report = "\n".join(
        [
            f"Resilience tier on a random graph "
            f"(n={graph.num_vertices}, m={graph.num_edges}, "
            f"shards={NUM_SHARDS}, scale={bench_profile.scale})",
            "",
            f"unarmed fire() cost:       {per_call_ns:.0f} ns/call",
            f"ops per decompose:         {ops}",
            f"supervised decompose:      {workload_seconds * 1e3:.1f} ms",
            f"supervision overhead:      {overhead_pct:.3f}% of workload "
            f"(limit {OVERHEAD_LIMIT_PCT:.0f}%)",
            f"fault resume:              +{resume['recovery_seconds'] * 1e3:.1f} ms over "
            f"{resume['clean_seconds'] * 1e3:.1f} ms clean "
            f"({resume['exchange_resumes']} resume(s), {resume['op_retries']} retry(ies))",
            f"degraded query:            {degradation['degraded_query_seconds'] * 1e3:.1f} ms "
            f"(recovery flush {degradation['recovery_flush_seconds'] * 1e3:.1f} ms, "
            f"recovered={degradation['recovered']})",
            f"checkpoint fallback:       {checkpoint['fallback_restore_seconds'] * 1e3:.1f} ms vs "
            f"{checkpoint['intact_restore_seconds'] * 1e3:.1f} ms intact",
        ]
    )
    return payload, report


def test_resilience_bench(benchmark, bench_profile, results_dir, record_report):
    payload, report = benchmark.pedantic(
        lambda: run_resilience(bench_profile, results_dir), rounds=1, iterations=1
    )
    record_report("resilience", report)
    write_bench_json(results_dir / "BENCH_resilience.json", "resilience", payload)

    assert payload["ops_dispatched"] > 0
    assert payload["degradation"]["recovered"]
    assert floor_failures(payload) == []
