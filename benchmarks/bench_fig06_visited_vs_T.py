"""Figure 6 — cumulative visited candidate vertices as ``T`` grows.

Paper expectation: IncAVT's per-snapshot candidate count stays nearly flat, so
its cumulative curve grows much more slowly than OLAK's and Greedy's.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_fig06_visited_vs_T


def test_fig06_visited_vs_T(benchmark, bench_profile, record_report):
    table, report = benchmark.pedantic(
        lambda: experiment_fig06_visited_vs_T(bench_profile), rounds=1, iterations=1
    )
    record_report("fig06_visited_vs_T", report, table.to_csv())

    horizon = max(table.distinct("T"))
    for dataset in table.distinct("dataset"):
        olak = table.filter(dataset=dataset, algorithm="OLAK", T=horizon).rows()[0]["visited"]
        incavt = table.filter(dataset=dataset, algorithm="IncAVT", T=horizon).rows()[0]["visited"]
        assert incavt <= olak
